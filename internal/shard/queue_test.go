package shard

import (
	"errors"
	"testing"
	"time"

	"repro/internal/inject"
)

// injectionStub fills a fake partial's slot for plan index i.
func injectionStub(i int) inject.Injection {
	return inject.Injection{CellID: i, Path: "stub", TimePS: uint64(i)}
}

// queueSpecs plans a tiny 4-shard campaign without building anything —
// the queue never looks inside the campaign spec.
func queueSpecs(t *testing.T) []Spec {
	t.Helper()
	specs, err := Plan(testSpec("EventSim", 0.05), 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

// fakePartial fabricates a partial covering a shard spec; queue tests
// never execute simulations.
func fakePartial(sp Spec) *Partial {
	p := &Partial{Index: sp.Index, Start: sp.Start, End: sp.End}
	for i := sp.Start; i < sp.End; i++ {
		p.Injections = append(p.Injections, injectionStub(i))
	}
	return p
}

func TestQueueLeaseCompleteLifecycle(t *testing.T) {
	specs := queueSpecs(t)
	q := NewQueue(specs, time.Minute)
	now := time.Unix(1000, 0)

	seen := map[int]bool{}
	var leases []*Lease
	for i := 0; i < len(specs); i++ {
		l, ok := q.Lease("w1", now)
		if !ok {
			t.Fatalf("lease %d refused with shards pending", i)
		}
		if seen[l.Spec.Index] {
			t.Fatalf("shard %d leased twice concurrently", l.Spec.Index)
		}
		seen[l.Spec.Index] = true
		leases = append(leases, l)
	}
	if _, ok := q.Lease("w2", now); ok {
		t.Fatal("lease granted with every shard already leased")
	}
	if q.Done() {
		t.Fatal("queue done with nothing completed")
	}
	for _, l := range leases {
		if err := q.Complete(l.ID, 0, fakePartial(l.Spec), now); err != nil {
			t.Fatal(err)
		}
	}
	if !q.Done() {
		t.Fatal("queue not done after all completions")
	}
	select {
	case <-q.WaitDone():
	default:
		t.Fatal("WaitDone channel not closed")
	}
	pr := q.Progress(now)
	if pr.Done != 4 || pr.Pending != 0 || pr.Leased != 0 {
		t.Fatalf("progress %+v after completion", pr)
	}
}

func TestQueueExpiryRequeuesDeadWorkersShard(t *testing.T) {
	specs := queueSpecs(t)
	q := NewQueue(specs, 10*time.Second)
	now := time.Unix(1000, 0)

	dead, ok := q.Lease("doomed", now)
	if !ok {
		t.Fatal("initial lease refused")
	}
	// Within the TTL the shard stays claimed.
	for i := 1; i < len(specs); i++ {
		q.Lease("w1", now.Add(time.Second))
	}
	if _, ok := q.Lease("w1", now.Add(2*time.Second)); ok {
		t.Fatal("leased shard re-issued before expiry")
	}
	// After the TTL the dead worker's shard is re-issued...
	late := now.Add(11 * time.Second)
	release, ok := q.Lease("w2", late)
	if !ok {
		t.Fatal("expired shard not re-issued")
	}
	if release.Spec.Index != dead.Spec.Index {
		t.Fatalf("re-issued shard %d, want the expired %d", release.Spec.Index, dead.Spec.Index)
	}
	// ...and a slow (not dead after all) worker's late completion is
	// still accepted while the shard remains unfinished — deterministic
	// execution makes its result identical to any re-execution, and
	// rejecting it would livelock campaigns whose shards outlive the TTL.
	if err := q.Complete(dead.ID, 0, fakePartial(dead.Spec), late); err != nil {
		t.Fatalf("late completion of an unfinished shard rejected: %v", err)
	}
	// The re-issued lease's duplicate is refused: the shard is done.
	if err := q.Complete(release.ID, 0, fakePartial(release.Spec), late); err == nil {
		t.Fatal("duplicate completion of a done shard accepted")
	}
	if pr := q.Progress(late); pr.Done != 1 {
		t.Fatalf("progress %+v, want 1 done", pr)
	}
}

func TestQueueMarkDoneFromJournal(t *testing.T) {
	specs := queueSpecs(t)
	q := NewQueue(specs, time.Minute)
	if err := q.MarkDone(fakePartial(specs[1])); err != nil {
		t.Fatal(err)
	}
	// A journal entry from a different shard plan must be rejected.
	stale := fakePartial(specs[2])
	stale.End++
	if err := q.MarkDone(stale); err == nil {
		t.Fatal("mismatched journal entry accepted")
	}
	now := time.Unix(1000, 0)
	for {
		l, ok := q.Lease("w", now)
		if !ok {
			break
		}
		if l.Spec.Index == 1 {
			t.Fatal("journal-completed shard leased out")
		}
		if err := q.Complete(l.ID, 0, fakePartial(l.Spec), now); err != nil {
			t.Fatal(err)
		}
	}
	if !q.Done() {
		t.Fatal("queue not done")
	}
	for i, p := range q.Partials() {
		if p == nil || p.Index != i {
			t.Fatalf("partial %d missing or misindexed: %+v", i, p)
		}
	}
}

// TestQueueRenewKeepsLiveShardLeased pins the heartbeat satellite: a
// renewed lease outlives the configured TTL, so a live shard that
// outruns -lease is never redundantly re-issued to an idle worker —
// while a worker that stops heartbeating still loses its lease.
func TestQueueRenewKeepsLiveShardLeased(t *testing.T) {
	specs := queueSpecs(t)
	q := NewQueue(specs[:1], 10*time.Second)
	now := time.Unix(1000, 0)
	l, ok := q.Lease("w1", now)
	if !ok {
		t.Fatal("initial lease refused")
	}
	if l.TTL != 10*time.Second {
		t.Fatalf("lease carries TTL %v, want 10s", l.TTL)
	}
	// Heartbeat every 4s for 40s: far past the original deadline, the
	// shard must stay leased.
	for i := 1; i <= 10; i++ {
		at := now.Add(time.Duration(i) * 4 * time.Second)
		exp, err := q.Renew(l.ID, at)
		if err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
		if want := at.Add(10 * time.Second); !exp.Equal(want) {
			t.Fatalf("renew %d extended to %v, want %v", i, exp, want)
		}
		if _, ok := q.Lease("idle", at); ok {
			t.Fatalf("renewed shard re-issued at +%v", at.Sub(now))
		}
	}
	// Stop heartbeating: one TTL later the shard is re-issued, and
	// renewing the stale lease fails.
	late := now.Add(51 * time.Second)
	if _, ok := q.Lease("w2", late); !ok {
		t.Fatal("unrenewed shard not re-issued after TTL")
	}
	if _, err := q.Renew(l.ID, late); err == nil {
		t.Fatal("renewing an expired lease succeeded")
	}
	// The slow original worker's completion is still accepted.
	if err := q.Complete(l.ID, 0, fakePartial(l.Spec), late); err != nil {
		t.Fatalf("late completion rejected after failed renew: %v", err)
	}
}

// TestQueueObservesShardDurations pins the ETA input: Progress reports
// the mean lease-to-completion time of finished shards.
func TestQueueObservesShardDurations(t *testing.T) {
	specs := queueSpecs(t)
	q := NewQueue(specs, time.Minute)
	now := time.Unix(1000, 0)
	l1, _ := q.Lease("w", now)
	if err := q.Complete(l1.ID, 0, fakePartial(l1.Spec), now.Add(10*time.Second)); err != nil {
		t.Fatal(err)
	}
	l2, _ := q.Lease("w", now.Add(10*time.Second))
	if err := q.Complete(l2.ID, 0, fakePartial(l2.Spec), now.Add(30*time.Second)); err != nil {
		t.Fatal(err)
	}
	pr := q.Progress(now.Add(30 * time.Second))
	if want := int64(15 * time.Second); pr.AvgShardNS != want {
		t.Fatalf("avg shard duration %v, want %v", time.Duration(pr.AvgShardNS), time.Duration(want))
	}
}

// TestQueueAllFromJournal pins the restart fast path: a journal that
// already covers every shard completes the queue with no worker at all.
func TestQueueAllFromJournal(t *testing.T) {
	specs := queueSpecs(t)
	q := NewQueue(specs, time.Minute)
	for _, sp := range specs {
		if err := q.MarkDone(fakePartial(sp)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-q.WaitDone():
	default:
		t.Fatal("fully journaled queue never reported done")
	}
}

// TestQueueStaleEpochFenced pins the fencing-token invariant: a
// completion delivered under an epoch older than the queue's is accepted
// while its shard is still unfinished (first-wins — the data is valid),
// but once the shard is done the stale duplicate is refused with
// ErrStaleEpoch and counted, so a deposed coordinator's zombie workers
// can never double-merge a shard.
func TestQueueStaleEpochFenced(t *testing.T) {
	specs := queueSpecs(t)
	q := NewQueue(specs, time.Minute)
	q.SetEpoch(1)
	now := time.Unix(1000, 0)

	zombie, ok := q.Lease("zombie", now)
	if !ok {
		t.Fatal("lease refused")
	}
	if zombie.Epoch != 1 {
		t.Fatalf("lease carries epoch %d, want 1", zombie.Epoch)
	}

	// Failover: the queue (conceptually a rebuilt one) moves to epoch 2.
	q.SetEpoch(2)

	// The zombie's completion of a still-unfinished shard is accepted —
	// first wins, regardless of epoch.
	if err := q.Complete(zombie.ID, zombie.Epoch, fakePartial(zombie.Spec), now); err != nil {
		t.Fatalf("stale-epoch completion of an unfinished shard rejected: %v", err)
	}
	// A second stale-epoch delivery of the now-done shard is fenced.
	err := q.Complete(zombie.ID, zombie.Epoch, fakePartial(zombie.Spec), now)
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale duplicate not fenced with ErrStaleEpoch: %v", err)
	}
	// A current-epoch duplicate is an ordinary refusal, not a fence.
	l2, _ := q.Lease("w2", now)
	if err := q.Complete(l2.ID, l2.Epoch, fakePartial(l2.Spec), now); err != nil {
		t.Fatal(err)
	}
	if err := q.Complete(l2.ID, l2.Epoch, fakePartial(l2.Spec), now); err == nil || errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("current-epoch duplicate misclassified: %v", err)
	}
	if pr := q.Progress(now); pr.Fenced != 1 {
		t.Fatalf("progress counts %d fenced completions, want 1", pr.Fenced)
	}
}

// TestQueueSpeculativeLease pins straggler re-issue: once a baseline
// shard duration exists, a shard whose lease has run k x that baseline
// is re-issued to a second worker; whichever copy lands first wins and
// the loser's duplicate is refused — and no shard ever carries more than
// one backup.
func TestQueueSpeculativeLease(t *testing.T) {
	specs := queueSpecs(t)
	q := NewQueue(specs, time.Hour) // TTL far away: speculation must beat expiry
	now := time.Unix(1000, 0)

	slow, _ := q.Lease("slow", now)
	fast, _ := q.Lease("fast", now)
	// No baseline yet: nothing speculates no matter how old the leases.
	if _, ok := q.SpeculativeLease("idle", now.Add(30*time.Minute), 3); ok {
		t.Fatal("speculated without any observed shard duration")
	}
	// fast finishes in 10s — the baseline.
	if err := q.Complete(fast.ID, 0, fakePartial(fast.Spec), now.Add(10*time.Second)); err != nil {
		t.Fatal(err)
	}
	// At 25s the slow lease is 2.5x the baseline: below factor 3.
	if _, ok := q.SpeculativeLease("idle", now.Add(25*time.Second), 3); ok {
		t.Fatal("speculated below the age threshold")
	}
	// At 40s it crosses 3x: re-issued to a different worker...
	backup, ok := q.SpeculativeLease("idle", now.Add(40*time.Second), 3)
	if !ok {
		t.Fatal("straggler not re-issued past the age threshold")
	}
	if backup.Spec.Index != slow.Spec.Index {
		t.Fatalf("backup covers shard %d, straggler is %d", backup.Spec.Index, slow.Spec.Index)
	}
	if backup.Worker != "idle" {
		t.Fatalf("backup granted to %q", backup.Worker)
	}
	// ...but never to the straggler's own worker, and never twice.
	if _, ok := q.SpeculativeLease("slow", now.Add(40*time.Second), 3); ok {
		t.Fatal("straggler's own worker handed its shard back")
	}
	if _, ok := q.SpeculativeLease("idle2", now.Add(40*time.Second), 3); ok {
		t.Fatal("second backup issued for the same shard")
	}
	// First completion wins — here the backup — and the straggler's late
	// copy is refused as an ordinary duplicate.
	if err := q.Complete(backup.ID, 0, fakePartial(backup.Spec), now.Add(41*time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := q.Complete(slow.ID, 0, fakePartial(slow.Spec), now.Add(42*time.Second)); err == nil {
		t.Fatal("straggler's duplicate of a speculated shard accepted")
	}
	if pr := q.Progress(now.Add(42 * time.Second)); pr.Speculated != 1 || pr.Done != 2 {
		t.Fatalf("progress %+v, want 1 speculated / 2 done", pr)
	}
}

// TestQueueBackupPromotedOnPrimaryExpiry: when a speculated shard's
// primary lease expires while the backup is live, the backup becomes the
// primary — the shard stays leased exactly once instead of returning to
// pending and being triple-issued.
func TestQueueBackupPromotedOnPrimaryExpiry(t *testing.T) {
	specs := queueSpecs(t)
	q := NewQueue(specs[:2], 30*time.Second)
	now := time.Unix(1000, 0)
	slow, _ := q.Lease("slow", now)
	fast, _ := q.Lease("fast", now)
	if err := q.Complete(fast.ID, 0, fakePartial(fast.Spec), now.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	backup, ok := q.SpeculativeLease("idle", now.Add(10*time.Second), 3)
	if !ok {
		t.Fatal("straggler not re-issued")
	}
	// The primary expires at +30s; the backup (granted +10s) lives to +40s.
	at := now.Add(35 * time.Second)
	if _, ok := q.Lease("w3", at); ok {
		t.Fatal("speculated shard re-issued a third time after primary expiry")
	}
	if pr := q.Progress(at); pr.Leased != 1 || pr.Pending != 0 {
		t.Fatalf("progress %+v, want the shard still leased via its backup", pr)
	}
	if err := q.Complete(backup.ID, 0, fakePartial(backup.Spec), at); err != nil {
		t.Fatalf("promoted backup's completion rejected: %v", err)
	}
	if !q.Done() {
		t.Fatal("queue not done")
	}
	_ = slow
}
