package shard

import (
	"testing"

	"repro/internal/inject"
	"repro/internal/xrand"
)

// testSpec is the small SoC1 campaign all shard tests run; sampleFrac is
// kept low so the full matrix stays fast.
func testSpec(engine string, sampleFrac float64) CampaignSpec {
	o := inject.DefaultOptions()
	cs := SpecFromOptions(1, "memcpy", o)
	cs.Engine = engine
	cs.SampleFrac = sampleFrac
	cs.MinPer = 2
	cs.Seed = 7
	return cs
}

func mustBuild(t *testing.T, cs CampaignSpec) *Built {
	t.Helper()
	b, err := Build(cs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// fpOf computes a campaign fingerprint, failing the test on error — the
// specs tests build are always fingerprintable.
func fpOf(t *testing.T, cs CampaignSpec) string {
	t.Helper()
	fp, err := cs.Fingerprint()
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	return fp
}

// singleProcess runs the reference un-sharded campaign.
func singleProcess(t *testing.T, cs CampaignSpec) *inject.Result {
	t.Helper()
	b := mustBuild(t, cs)
	if err := b.Run.Campaign.Run(b.Run.Result); err != nil {
		t.Fatal(err)
	}
	return b.Run.Result
}

// TestShardedCampaignDeterminism is the sharding determinism gate, the
// distribution-axis sibling of inject.TestWarmColdWorkerDeterminism: for
// any shard count and any (shuffled) execution and arrival order, the
// merged result must be bit-identical to the single-process campaign, on
// both engines.
func TestShardedCampaignDeterminism(t *testing.T) {
	cases := []struct {
		engine string
		frac   float64
	}{
		{"EventSim", 0.05},
		{"LevelSim", 0.02},
	}
	for _, tc := range cases {
		t.Run(tc.engine, func(t *testing.T) {
			cs := testSpec(tc.engine, tc.frac)
			ref := singleProcess(t, cs)
			rng := xrand.New(99)
			for _, numShards := range []int{1, 2, 5} {
				b := mustBuild(t, cs)
				specs, err := Plan(cs, numShards, len(b.Jobs))
				if err != nil {
					t.Fatal(err)
				}
				// Execute in shuffled order — shards are independent work
				// units, and a coordinator hands them out in whatever order
				// workers show up.
				order := rng.Sample(len(specs), len(specs))
				partials := make([]*Partial, 0, len(specs))
				for _, i := range order {
					p, err := ExecuteOn(b, specs[i])
					if err != nil {
						t.Fatal(err)
					}
					partials = append(partials, p)
				}
				got, err := Merge(b, partials)
				if err != nil {
					t.Fatal(err)
				}
				if err := EquivalentResults(ref, got); err != nil {
					t.Fatalf("%d shards: merged result diverges from single-process: %v", numShards, err)
				}
			}
		})
	}
}

// TestExecutorReusesBuiltCampaign pins the per-worker-process economy:
// all shards of one campaign run on one build (one golden run), and the
// executor still produces partials that merge bit-identically.
func TestExecutorReusesBuiltCampaign(t *testing.T) {
	cs := testSpec("EventSim", 0.05)
	ref := singleProcess(t, cs)
	b := mustBuild(t, cs)
	specs, err := Plan(cs, 3, len(b.Jobs))
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor()
	ex.Adopt(b)
	var partials []*Partial
	for _, sp := range specs {
		p, err := ex.Execute(sp)
		if err != nil {
			t.Fatal(err)
		}
		partials = append(partials, p)
	}
	if len(ex.built) != 1 {
		t.Fatalf("executor built %d campaigns, want the adopted 1", len(ex.built))
	}
	got, err := Merge(b, partials)
	if err != nil {
		t.Fatal(err)
	}
	if err := EquivalentResults(ref, got); err != nil {
		t.Fatalf("executor-run shards diverge: %v", err)
	}
}

// TestExecutorResultCache pins the requeued-shard satellite: a shard the
// worker already finished is served from the (fingerprint, range) cache
// instead of re-simulated, and the cached partial is the same object the
// first execution produced.
func TestExecutorResultCache(t *testing.T) {
	cs := testSpec("EventSim", 0.05)
	b := mustBuild(t, cs)
	specs, err := Plan(cs, 2, len(b.Jobs))
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor()
	ex.Adopt(b)
	first, err := ex.Execute(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if ex.CacheHits() != 0 {
		t.Fatalf("cache hit before any repeat: %d", ex.CacheHits())
	}
	again, err := ex.Execute(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if ex.CacheHits() != 1 {
		t.Fatalf("repeat execution recorded %d cache hits, want 1", ex.CacheHits())
	}
	if again != first {
		t.Fatal("repeat execution did not return the cached partial")
	}
	// A different range of the same campaign is a miss.
	if _, err := ex.Execute(specs[1]); err != nil {
		t.Fatal(err)
	}
	if ex.CacheHits() != 1 {
		t.Fatalf("distinct range counted as a cache hit: %d", ex.CacheHits())
	}
}

// TestExecutorEvictsStaleCampaigns pins the cache bound: an executor
// draining a long sweep keeps at most maxCachedCampaigns campaigns'
// builds and partials, evicting least-recently-used first.
func TestExecutorEvictsStaleCampaigns(t *testing.T) {
	ex := NewExecutor()
	var specs []CampaignSpec
	for i := 0; i < maxCachedCampaigns+2; i++ {
		cs := testSpec("EventSim", 0.05)
		cs.Seed = uint64(100 + i)
		specs = append(specs, cs)
		// Fake builds: the eviction policy never looks inside them.
		ex.Adopt(&Built{Spec: cs, Fingerprint: fpOf(t, cs)})
	}
	if len(ex.built) != maxCachedCampaigns {
		t.Fatalf("executor caches %d campaigns, want at most %d", len(ex.built), maxCachedCampaigns)
	}
	// The oldest two are gone, the newest still cached.
	if _, ok := ex.built[fpOf(t, specs[0])]; ok {
		t.Fatal("least-recently-used campaign not evicted")
	}
	if _, ok := ex.built[fpOf(t, specs[len(specs)-1])]; !ok {
		t.Fatal("most-recent campaign evicted")
	}
	// Re-adopting an evicted campaign makes it most-recent again.
	ex.Adopt(&Built{Spec: specs[0], Fingerprint: fpOf(t, specs[0])})
	if _, ok := ex.built[fpOf(t, specs[0])]; !ok {
		t.Fatal("re-adopted campaign not cached")
	}
}

// TestPlanAtMostClampsToTinyCampaigns pins the sweep-planning behaviour:
// a campaign smaller than the requested shard count degrades to one
// shard per injection instead of failing.
func TestPlanAtMostClampsToTinyCampaigns(t *testing.T) {
	cs := testSpec("EventSim", 0.05)
	specs, err := PlanAtMost(cs, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("clamped plan has %d shards, want 3", len(specs))
	}
	if specs[2].End != 3 {
		t.Fatalf("clamped plan covers %d jobs, want 3", specs[2].End)
	}
	specs, err = PlanAtMost(cs, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("unclamped plan has %d shards, want 2", len(specs))
	}
}

func TestPlanValidation(t *testing.T) {
	cs := testSpec("EventSim", 0.05)
	if _, err := Plan(cs, 0, 10); err == nil {
		t.Error("shard count 0 accepted")
	}
	if _, err := Plan(cs, 11, 10); err == nil {
		t.Error("shard count exceeding injections accepted")
	}
	specs, err := Plan(cs, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for i, sp := range specs {
		if sp.Start != next || sp.End <= sp.Start {
			t.Fatalf("shard %d covers [%d,%d), want contiguous from %d", i, sp.Start, sp.End, next)
		}
		if size := sp.End - sp.Start; size != 3 && size != 4 {
			t.Fatalf("shard %d size %d not balanced", i, size)
		}
		next = sp.End
	}
	if next != 10 {
		t.Fatalf("shards cover %d of 10 jobs", next)
	}
}

func TestFingerprintSeparatesCampaigns(t *testing.T) {
	a := testSpec("EventSim", 0.05)
	b := a
	if fpOf(t, a) != fpOf(t, b) {
		t.Fatal("equal specs produced different fingerprints")
	}
	b.Seed++
	if fpOf(t, a) == fpOf(t, b) {
		t.Fatal("different seeds share a fingerprint")
	}
	c := a
	c.Engine = "LevelSim"
	if fpOf(t, a) == fpOf(t, c) {
		t.Fatal("different engines share a fingerprint")
	}
}

func TestSpecValidation(t *testing.T) {
	ok := testSpec("EventSim", 0.05)
	bad := []func(*CampaignSpec){
		func(cs *CampaignSpec) { cs.SoC = 0 },
		func(cs *CampaignSpec) { cs.SoC = 11 },
		func(cs *CampaignSpec) { cs.Workload = "quicksort3" },
		func(cs *CampaignSpec) { cs.Engine = "Verilator" },
		func(cs *CampaignSpec) { cs.SampleFrac = 0 },
		func(cs *CampaignSpec) { cs.SampleFrac = 1.5 },
		func(cs *CampaignSpec) { cs.KN = 0 },
		func(cs *CampaignSpec) { cs.Flux = -1 },
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for i, mutate := range bad {
		cs := ok
		mutate(&cs)
		if err := cs.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestMergeRejectsBadCoverage(t *testing.T) {
	cs := testSpec("EventSim", 0.05)
	b := mustBuild(t, cs)
	specs, err := Plan(cs, 3, len(b.Jobs))
	if err != nil {
		t.Fatal(err)
	}
	var partials []*Partial
	for _, sp := range specs {
		p, err := ExecuteOn(b, sp)
		if err != nil {
			t.Fatal(err)
		}
		partials = append(partials, p)
	}
	if _, err := Merge(b, partials[:2]); err == nil {
		t.Error("merge accepted a missing shard")
	}
	if _, err := Merge(b, []*Partial{partials[0], partials[0], partials[1], partials[2]}); err != nil {
		t.Errorf("merge rejected an exact duplicate partial: %v", err)
	}
	mangled := *partials[1]
	mangled.Injections = mangled.Injections[:len(mangled.Injections)-1]
	if _, err := Merge(b, []*Partial{partials[0], &mangled, partials[2]}); err == nil {
		t.Error("merge accepted a short partial")
	}
}
