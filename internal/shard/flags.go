package shard

import (
	"flag"

	"repro/internal/inject"
)

// CampaignFlagNames is the set of flag names CampaignFlags registers,
// derived from a scratch registration so it can never drift from the
// real one. CLIs that also register sweep flags use it to reject
// command lines that set single-campaign flags under a sweep, where
// they would be silently ignored.
var CampaignFlagNames = func() map[string]bool {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	CampaignFlags(fs)
	names := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) { names[f.Name] = true })
	return names
}()

// CampaignFlags registers the campaign-defining flags on fs and returns
// a closure that materializes the validated CampaignSpec after parsing.
// Every CLI that names a campaign (cmd/socfault, cmd/campaignd) goes
// through this one registration point, so a campaign described on either
// tool's command line produces the same spec — and therefore the same
// fingerprint, which is what lets a socfault journal resume under
// campaignd and vice versa. The defaults are the paper's, with KN 0
// resolving to the benchmark's Table I cluster count.
func CampaignFlags(fs *flag.FlagSet) func() (CampaignSpec, error) {
	soc := fs.Int("soc", 1, "Table I benchmark index (1-10)")
	workload := fs.String("workload", "memcpy", "workload kernel: memcpy, dot, crc, sort, fib")
	engine := fs.String("engine", "EventSim", "simulation engine: EventSim (VCS role) or LevelSim (CVC role)")
	let := fs.Float64("let", 37.0, "linear energy transfer (MeV·cm²/mg)")
	flux := fs.Float64("flux", 5e8, "particle flux (particles/cm²/s)")
	exposure := fs.Float64("exposure", 4e-10, "exposure window (s)")
	kn := fs.Int("kn", 0, "cluster count KN (0 = paper's value for the benchmark)")
	ln := fs.Int("ln", 3, "cluster layer depth LN")
	sample := fs.Float64("sample", 0.2, "per-cluster sampling fraction")
	minPer := fs.Int("minper", 3, "minimum sampled cells per cluster")
	seed := fs.Uint64("seed", 1, "campaign random seed")
	cold := fs.Bool("cold", false, "disable checkpoint warm starts and replay every injection from t=0")
	placement := fs.String("ckpt-placement", "quantile", "golden checkpoint placement: quantile (snapshots at the drawn plan's strike-time quantiles; never a worse average restore tail than fixed) or fixed (every -ckpt cycles); verdicts are identical either way")
	return func() (CampaignSpec, error) {
		cs := CampaignSpec{
			SoC:        *soc,
			Workload:   *workload,
			Engine:     *engine,
			LET:        *let,
			Flux:       *flux,
			ExposureS:  *exposure,
			KN:         *kn,
			LN:         *ln,
			SampleFrac: *sample,
			MinPer:     *minPer,
			Seed:       *seed,
			ColdStart:  *cold,
		}
		if *placement != inject.PlacementQuantile {
			// Quantile is the default; the spec records only deviations so
			// pre-placement fingerprints and journals stay valid.
			cs.CkptPlacement = *placement
		}
		if cs.KN == 0 {
			cs.KN = PaperKN(cs.SoC)
		}
		return cs, cs.Validate()
	}
}
