package shard

import (
	"fmt"
	"testing"

	"repro/internal/inject"
	"repro/internal/obs"
)

// countingBuilder wraps a Builder and counts Build invocations.
type countingBuilder struct {
	inner  Builder
	builds int
}

func (c *countingBuilder) Build(cs CampaignSpec, tune func(*inject.Options)) (*Built, bool, error) {
	c.builds++
	return c.inner.Build(cs, tune)
}

// TestExecutorEvictionPinsInFlight is the regression test for the
// eviction race: cache traffic on other campaigns arriving while a shard
// is mid-flight (campaign built, simulation not yet finished) used to be
// able to evict the in-flight campaign's Built — dropping golden
// checkpoints a batch still held and forcing a pointless rebuild for its
// next shard. Pinned in-flight campaigns must survive any amount of
// concurrent eviction pressure.
func TestExecutorEvictionPinsInFlight(t *testing.T) {
	cs := testSpec("EventSim", 0.05)
	fp := fpOf(t, cs)
	e := NewExecutor()
	cb := &countingBuilder{inner: LocalBuilder{}}
	e.SetBuilder(cb)
	e.Adopt(mustBuild(t, cs))
	specs, err := Plan(cs, 2, 4)
	if err != nil {
		t.Fatal(err)
	}

	e.execHook = func() {
		// Flood the cache with far more campaigns than it retains, in the
		// window between build and simulation.
		for i := 0; i < 3*maxCachedCampaigns; i++ {
			e.Adopt(&Built{Fingerprint: fmt.Sprintf("dummy-%02d", i)})
		}
	}
	if _, err := e.Execute(specs[0]); err != nil {
		t.Fatal(err)
	}
	e.execHook = nil

	e.mu.Lock()
	_, retained := e.built[fp]
	pins := len(e.pins)
	e.mu.Unlock()
	if !retained {
		t.Fatal("in-flight campaign was evicted by concurrent cache traffic")
	}
	if pins != 0 {
		t.Fatalf("%d pins leaked after ExecuteFor returned", pins)
	}
	if _, err := e.Execute(specs[1]); err != nil {
		t.Fatal(err)
	}
	if cb.builds != 0 {
		t.Fatalf("executor rebuilt an adopted campaign %d times", cb.builds)
	}
}

// fetchingBuilder serves a pre-built campaign as if fetched from the
// artifact lake.
type fetchingBuilder struct{ b *Built }

func (f fetchingBuilder) Build(CampaignSpec, func(*inject.Options)) (*Built, bool, error) {
	return f.b, true, nil
}

// TestExecutorBuilderSeamGoldenSpan pins the trace contract the fleet's
// built-exactly-once assertion rests on: a local build emits one
// "golden" span, a lake fetch emits none.
func TestExecutorBuilderSeamGoldenSpan(t *testing.T) {
	cs := testSpec("EventSim", 0.05)
	specs, err := Plan(cs, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	goldenSpans := func(tr *obs.Tracer) int {
		raw, err := tr.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		evs, err := obs.ValidateTrace(raw)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, ev := range evs {
			if ev.Name == "golden" {
				n++
			}
		}
		return n
	}

	local := NewExecutor()
	tr := obs.NewTracer()
	local.SetMetrics(nil, tr)
	pLocal, err := local.Execute(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if n := goldenSpans(tr); n != 1 {
		t.Fatalf("local build emitted %d golden spans, want 1", n)
	}

	var prebuilt *Built
	local.mu.Lock()
	prebuilt = local.built[fpOf(t, cs)]
	local.mu.Unlock()

	fetched := NewExecutor()
	tr2 := obs.NewTracer()
	fetched.SetMetrics(nil, tr2)
	fetched.SetBuilder(fetchingBuilder{b: prebuilt})
	pFetched, err := fetched.Execute(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if n := goldenSpans(tr2); n != 0 {
		t.Fatalf("lake fetch emitted %d golden spans, want 0", n)
	}
	if len(pLocal.Injections) != len(pFetched.Injections) {
		t.Fatal("fetched-campaign shard diverged from local build")
	}
	for i := range pLocal.Injections {
		if pLocal.Injections[i] != pFetched.Injections[i] {
			t.Fatalf("injection %d differs between local and fetched campaign", i)
		}
	}
}

// mapPartials is an in-memory PartialCache.
type mapPartials struct {
	store map[cacheKey]*Partial
	puts  int
}

func (m *mapPartials) GetPartial(fp string, start, end int) *Partial {
	return m.store[cacheKey{fp: fp, start: start, end: end}]
}

func (m *mapPartials) PutPartial(fp string, p *Partial) {
	m.puts++
	cp := *p
	m.store[cacheKey{fp: fp, start: p.Start, end: p.End}] = &cp
}

// TestExecutorPartialCache covers the fleet-wide memoization seam: a
// partial published for (fp, range) is adopted without re-simulation
// (with the shard index rewritten for the adopting plan), and computed
// partials are published back.
func TestExecutorPartialCache(t *testing.T) {
	cs := testSpec("EventSim", 0.05)
	fp := fpOf(t, cs)
	specs, err := Plan(cs, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	pc := &mapPartials{store: map[cacheKey]*Partial{}}

	producer := NewExecutor()
	producer.SetPartialCache(pc)
	p0, err := producer.Execute(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if pc.puts != 1 {
		t.Fatalf("producer published %d partials, want 1", pc.puts)
	}

	// A different process replanned the same campaign so the range is the
	// same but the shard index differs.
	published := pc.store[cacheKey{fp: fp, start: specs[0].Start, end: specs[0].End}]
	published.Index = 7

	consumer := NewExecutor()
	consumer.SetPartialCache(pc)
	cb := &countingBuilder{inner: LocalBuilder{}}
	consumer.SetBuilder(cb)
	got, err := consumer.Execute(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if got.Index != specs[0].Index {
		t.Fatalf("adopted partial kept foreign shard index %d, want %d", got.Index, specs[0].Index)
	}
	if len(got.Injections) != len(p0.Injections) {
		t.Fatal("adopted partial does not match the produced one")
	}
	for i := range got.Injections {
		if got.Injections[i] != p0.Injections[i] {
			t.Fatalf("injection %d differs between produced and adopted partial", i)
		}
	}
	// The campaign still had to be built (the golden run is a separate
	// artifact), but the shard itself must not have been re-simulated —
	// puts stays at 1 because an adopted partial is not re-published.
	if pc.puts != 1 {
		t.Fatalf("consumer re-published an adopted partial (puts=%d)", pc.puts)
	}
	if cb.builds != 1 {
		t.Fatalf("consumer built %d times, want 1", cb.builds)
	}
}
