// let_sweep runs the extension experiment: the same fault-injection
// campaign at each tabulated LET of the soft-error database (1.0, 37.0,
// 100.0 MeV·cm²/mg), showing how module soft-error rates and chip
// cross-sections grow with deposited energy. The paper selects these three
// LETs "to encompass different radiation environments" but never sweeps
// them; this example quantifies what the choice spans.
package main

import (
	"log"
	"os"

	"repro/internal/ssresf"
)

func main() {
	ec := ssresf.DefaultExperimentConfig(false)
	pts, err := ssresf.LETSweep(ec, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	ssresf.RenderLETSweep(os.Stdout, 1, pts)
}
