// let_sweep runs the extension experiment: the same fault-injection
// campaign at each tabulated LET of the soft-error database (1.0, 37.0,
// 100.0 MeV·cm²/mg), showing how module soft-error rates and chip
// cross-sections grow with deposited energy. The paper selects these three
// LETs "to encompass different radiation environments" but never sweeps
// them; this example quantifies what the choice spans.
//
// With -shards N the sweep runs through the grid machinery instead: every
// LET's campaign executes as N shards whose merge is bit-identical to the
// in-process run, with an optional resumable -journal — the same grid a
// `campaignd serve -sweep let` coordinator hands to a worker fleet.
//
// With -submit URL the sweep does not run here at all: its declarative
// description goes to a running campaignd coordinator over the typed
// capi client, the fleet drains it, and the fetched rendered results —
// byte-identical to every local path — are printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/capi"
	"repro/internal/ssresf"
	"repro/internal/sweep"
)

func main() {
	shards := flag.Int("shards", 0, "run as a sharded sweep with this many shards per campaign (0 = classic in-process)")
	journal := flag.String("journal", "", "sweep journal file (with -shards)")
	resume := flag.Bool("resume", false, "resume from -journal, skipping recorded shards")
	submit := flag.String("submit", "", "submit the sweep to the campaignd coordinator at this URL and fetch its results")
	flag.Parse()

	if *submit != "" {
		submitAndFetch(*submit, sweep.GridParams{Kind: "let", SoC: 1, Workload: "memcpy"})
		return
	}
	ec := ssresf.DefaultExperimentConfig(false)
	if *shards > 0 {
		grid, err := sweep.LETGrid(ec, 1, nil, "memcpy")
		if err != nil {
			log.Fatal(err)
		}
		results, err := sweep.RunLocal(grid.Spec, sweep.LocalOptions{
			Shards:  *shards,
			Journal: *journal,
			Resume:  *resume,
			Logf:    log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := grid.Render(os.Stdout, results); err != nil {
			log.Fatal(err)
		}
		return
	}
	pts, err := ssresf.LETSweep(ec, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	ssresf.RenderLETSweep(os.Stdout, 1, pts)
}

// submitAndFetch is the submit-then-fetch-results walkthrough: one
// Submit, a WaitSweep watching per-campaign progress, one Results.
func submitAndFetch(url string, params sweep.GridParams) {
	ctx := context.Background()
	client := capi.NewClient(url)
	reply, err := client.Submit(ctx, params)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("sweep %s (%.12s): %d campaigns on %s", reply.Name, reply.Fingerprint, reply.Campaigns, url)
	st, err := client.WaitSweep(ctx, reply.Fingerprint, func(st capi.SweepStatus) {
		log.Printf("%d/%d campaigns done", st.Progress.CampaignsDone, st.Progress.CampaignsTotal)
	})
	if err != nil {
		log.Fatal(err)
	}
	if st.State != capi.StateDone {
		log.Fatalf("sweep ended %s: %s", st.State, st.Error)
	}
	rendered, err := client.Results(ctx, reply.Fingerprint)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(string(rendered))
}
