// let_sweep runs the extension experiment: the same fault-injection
// campaign at each tabulated LET of the soft-error database (1.0, 37.0,
// 100.0 MeV·cm²/mg), showing how module soft-error rates and chip
// cross-sections grow with deposited energy. The paper selects these three
// LETs "to encompass different radiation environments" but never sweeps
// them; this example quantifies what the choice spans.
//
// With -shards N the sweep runs through the grid machinery instead: every
// LET's campaign executes as N shards whose merge is bit-identical to the
// in-process run, with an optional resumable -journal — the same grid a
// `campaignd serve -sweep let` coordinator hands to a worker fleet.
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/ssresf"
	"repro/internal/sweep"
)

func main() {
	shards := flag.Int("shards", 0, "run as a sharded sweep with this many shards per campaign (0 = classic in-process)")
	journal := flag.String("journal", "", "sweep journal file (with -shards)")
	resume := flag.Bool("resume", false, "resume from -journal, skipping recorded shards")
	flag.Parse()

	ec := ssresf.DefaultExperimentConfig(false)
	if *shards > 0 {
		grid, err := sweep.LETGrid(ec, 1, nil, "memcpy")
		if err != nil {
			log.Fatal(err)
		}
		results, err := sweep.RunLocal(grid.Spec, sweep.LocalOptions{
			Shards:  *shards,
			Journal: *journal,
			Resume:  *resume,
			Logf:    log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := grid.Render(os.Stdout, results); err != nil {
			log.Fatal(err)
		}
		return
	}
	pts, err := ssresf.LETSweep(ec, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	ssresf.RenderLETSweep(os.Stdout, 1, pts)
}
