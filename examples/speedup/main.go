// speedup reproduces Table III and Fig. 7 on PULP SoC1: fault-injection
// campaigns on both simulation engines (EventSim in the VCS role, LevelSim
// in the CVC role) under five flux conditions, against the SVM model's
// prediction time; then the distribution of highly sensitive nodes across
// memory, bus, and CPU logic per source.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/ssresf"
)

func main() {
	ec := ssresf.DefaultExperimentConfig(false)
	fluxes := []float64{4e8, 5e8, 6e8, 7e8, 8e8}

	rows, avg, err := ssresf.TableIII(ec, fluxes)
	if err != nil {
		log.Fatal(err)
	}
	ssresf.RenderTableIII(os.Stdout, rows, avg)
	fmt.Println()

	figRows, err := ssresf.Fig7(ec, fluxes)
	if err != nil {
		log.Fatal(err)
	}
	ssresf.RenderFig7(os.Stdout, figRows)
}
