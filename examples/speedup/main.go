// speedup reproduces Table III and Fig. 7 on PULP SoC1: fault-injection
// campaigns on both simulation engines (EventSim in the VCS role, LevelSim
// in the CVC role) under five flux conditions, against the SVM model's
// prediction time; then the distribution of highly sensitive nodes across
// memory, bus, and CPU logic per source. It closes with the checkpoint
// warm-start comparison: the same campaign replayed from t=0 vs restored
// from golden checkpoints, which only simulates each injection's
// post-strike tail (see DESIGN.md).
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/fault"
	"repro/internal/inject"
	"repro/internal/riscv"
	"repro/internal/socgen"
	"repro/internal/ssresf"
)

func main() {
	ec := ssresf.DefaultExperimentConfig(false)
	fluxes := []float64{4e8, 5e8, 6e8, 7e8, 8e8}

	rows, avg, err := ssresf.TableIII(ec, fluxes)
	if err != nil {
		log.Fatal(err)
	}
	ssresf.RenderTableIII(os.Stdout, rows, avg)
	fmt.Println()

	figRows, err := ssresf.Fig7(ec, fluxes)
	if err != nil {
		log.Fatal(err)
	}
	ssresf.RenderFig7(os.Stdout, figRows)
	fmt.Println()

	warmVsCold()
}

// warmVsCold runs one SoC1 campaign twice — cold (every injection replays
// the workload from t=0) and warm (every injection restores the latest
// golden checkpoint before its strike and simulates only the tail) — and
// prints the work reduction. The verdicts are bit-identical by design.
func warmVsCold() {
	cfg, err := socgen.ConfigByIndex(1)
	if err != nil {
		log.Fatal(err)
	}
	opts := inject.DefaultOptions()
	coldOpts := opts
	coldOpts.ColdStart = true

	cold, err := inject.RunSoC(cfg, riscv.MemcpyProgram(16), fault.DefaultDB(), coldOpts)
	if err != nil {
		log.Fatal(err)
	}
	warm, err := inject.RunSoC(cfg, riscv.MemcpyProgram(16), fault.DefaultDB(), opts)
	if err != nil {
		log.Fatal(err)
	}
	cr, wr := cold.Result, warm.Result
	if len(cr.Injections) != len(wr.Injections) {
		log.Fatalf("warm/cold injection counts differ: %d vs %d", len(cr.Injections), len(wr.Injections))
	}
	for i := range cr.Injections {
		if cr.Injections[i] != wr.Injections[i] {
			log.Fatalf("warm/cold verdict mismatch at injection %d", i)
		}
	}
	fmt.Printf("checkpoint warm-start on %s (%d injections, verdicts bit-identical):\n",
		cr.Design, len(cr.Injections))
	fmt.Printf("  cold: %12d cell evals  %v\n", cr.InjectEvals, cr.InjectWall)
	fmt.Printf("  warm: %12d cell evals  %v  (%d warm starts, %d pruned by convergence)\n",
		wr.InjectEvals, wr.InjectWall, wr.WarmStarts, wr.PrunedRuns)
	fmt.Printf("  reduction: %.1fx cell evals, %.1fx wall clock\n",
		float64(cr.InjectEvals)/float64(wr.InjectEvals),
		float64(cr.InjectWall)/float64(wr.InjectWall))
}
