// Quickstart: run the SSRESF pipeline on the smallest benchmark in ~30
// lines — generate the SoC netlist, inject single-particle faults, and
// train the sensitivity classifier.
package main

import (
	"fmt"
	"log"

	"repro/internal/fault"
	"repro/internal/inject"
	"repro/internal/riscv"
	"repro/internal/socgen"
	"repro/internal/ssresf"
)

func main() {
	cfg, err := socgen.ConfigByIndex(1) // PULP SoC1: 64KB SRAM, APB, RV32I
	if err != nil {
		log.Fatal(err)
	}
	opts := inject.DefaultOptions() // LET 37, flux 5e8, EventSim
	opts.SampleFrac = 0.15

	an, err := ssresf.AnalyzeSoC(cfg, riscv.FibProgram(20), fault.DefaultDB(), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip SER (Eq. 2): %.4f — %d soft errors in %d injections\n",
		an.Run.Result.ChipSER, an.Run.Result.SoftErrorCount(), len(an.Run.Result.Injections))

	cls, err := ssresf.Train(an.Dataset, ssresf.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}
	pred, dur, err := cls.Predict(an.Run.Flat)
	if err != nil {
		log.Fatal(err)
	}
	high := 0
	for _, p := range pred {
		if p {
			high++
		}
	}
	fmt.Printf("SVM (%s) classified %d/%d nodes highly sensitive in %v\n",
		cls.Config.Kernel.Name(), high, len(pred), dur)
}
