// sensitivity_classifier reproduces the machine-learning experiments on
// PULP SoC1: the Fig. 5 feature-selection sweep, Table II-style
// cross-validated classification metrics, and the Fig. 6 ROC curve.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/socgen"
	"repro/internal/ssresf"
)

func main() {
	ec := ssresf.DefaultExperimentConfig(false)
	cfg, err := socgen.ConfigByIndex(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("running fault-injection campaign (dynamic simulation phase)...")
	an, err := ssresf.AnalyzeSoC(cfg, ec.Workload, ec.DB, ec.OptionsFor(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d nodes, %d labeled highly sensitive\n\n",
		len(an.Dataset.Y), an.Dataset.PositiveCount())

	// Fig. 5: cross-validation score vs feature count.
	pts, err := ssresf.Fig5(an.Dataset, 10, 1)
	if err != nil {
		log.Fatal(err)
	}
	ssresf.RenderFig5(os.Stdout, pts)
	fmt.Println()

	// Train with the best feature count and grid-searched (C, γ).
	cls, err := ssresf.Train(an.Dataset, ssresf.TrainOptions{
		FeatureCount: ssresf.BestFeatureCount(pts),
		Folds:        10,
		GridSearch:   true,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected features: %v\n", cls.Selected)
	fmt.Printf("kernel %s  C=%g\n", cls.Config.Kernel.Name(), cls.Config.C)
	fmt.Printf("10-fold CV: %s\n\n", cls.TrainCV.String())

	// Fig. 6: ROC curve.
	curve, auc, err := ssresf.Fig6(cls, an)
	if err != nil {
		log.Fatal(err)
	}
	ssresf.RenderFig6(os.Stdout, curve, auc)
}
