// soc_sweep reproduces Table I: soft-error campaigns across all ten PULP
// SoC configurations, reporting per-module SER, cluster counts and total
// SET/SEU cross-sections. Expect the paper's trends: bus and memory above
// CPU logic, SER growing with memory size / bus width / core count, and
// the rad-hard SRAM of SoC10 collapsing the memory column.
//
// With -shards N the whole table runs through the grid machinery: ten
// campaigns as one sweep, each sharded and journaled, merging and
// rendering bit-identically to the classic path — locally here, or
// distributed over a fleet with `campaignd serve -sweep table1`.
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/ssresf"
	"repro/internal/sweep"
)

func main() {
	shards := flag.Int("shards", 0, "run as a sharded sweep with this many shards per campaign (0 = classic in-process)")
	journal := flag.String("journal", "", "sweep journal file (with -shards)")
	resume := flag.Bool("resume", false, "resume from -journal, skipping recorded shards")
	flag.Parse()

	ec := ssresf.DefaultExperimentConfig(false)
	if *shards > 0 {
		grid, err := sweep.TableIGrid(ec, "memcpy")
		if err != nil {
			log.Fatal(err)
		}
		results, err := sweep.RunLocal(grid.Spec, sweep.LocalOptions{
			Shards:  *shards,
			Journal: *journal,
			Resume:  *resume,
			Logf:    log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := grid.Render(os.Stdout, results); err != nil {
			log.Fatal(err)
		}
		return
	}
	rows, err := ssresf.TableI(ec)
	if err != nil {
		log.Fatal(err)
	}
	ssresf.RenderTableI(os.Stdout, rows)
}
