// soc_sweep reproduces Table I: soft-error campaigns across all ten PULP
// SoC configurations, reporting per-module SER, cluster counts and total
// SET/SEU cross-sections. Expect the paper's trends: bus and memory above
// CPU logic, SER growing with memory size / bus width / core count, and
// the rad-hard SRAM of SoC10 collapsing the memory column.
//
// With -shards N the whole table runs through the grid machinery: ten
// campaigns as one sweep, each sharded and journaled, merging and
// rendering bit-identically to the classic path — locally here, or
// distributed over a fleet with `campaignd serve -sweep table1`.
//
// With -submit URL the table is produced by a running fleet instead:
// the grid's declarative description goes to a campaignd coordinator
// over the typed capi client, workers drain all ten campaigns, and the
// fetched rendered Table I — byte-identical to every local path — is
// printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/capi"
	"repro/internal/ssresf"
	"repro/internal/sweep"
)

func main() {
	shards := flag.Int("shards", 0, "run as a sharded sweep with this many shards per campaign (0 = classic in-process)")
	journal := flag.String("journal", "", "sweep journal file (with -shards)")
	resume := flag.Bool("resume", false, "resume from -journal, skipping recorded shards")
	submit := flag.String("submit", "", "submit the sweep to the campaignd coordinator at this URL and fetch its results")
	flag.Parse()

	if *submit != "" {
		submitAndFetch(*submit, sweep.GridParams{Kind: "table1", Workload: "memcpy"})
		return
	}
	ec := ssresf.DefaultExperimentConfig(false)
	if *shards > 0 {
		grid, err := sweep.TableIGrid(ec, "memcpy")
		if err != nil {
			log.Fatal(err)
		}
		results, err := sweep.RunLocal(grid.Spec, sweep.LocalOptions{
			Shards:  *shards,
			Journal: *journal,
			Resume:  *resume,
			Logf:    log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := grid.Render(os.Stdout, results); err != nil {
			log.Fatal(err)
		}
		return
	}
	rows, err := ssresf.TableI(ec)
	if err != nil {
		log.Fatal(err)
	}
	ssresf.RenderTableI(os.Stdout, rows)
}

// submitAndFetch is the submit-then-fetch-results walkthrough: one
// Submit, a WaitSweep watching per-campaign progress, one Results.
func submitAndFetch(url string, params sweep.GridParams) {
	ctx := context.Background()
	client := capi.NewClient(url)
	reply, err := client.Submit(ctx, params)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("sweep %s (%.12s): %d campaigns on %s", reply.Name, reply.Fingerprint, reply.Campaigns, url)
	st, err := client.WaitSweep(ctx, reply.Fingerprint, func(st capi.SweepStatus) {
		log.Printf("%d/%d campaigns done", st.Progress.CampaignsDone, st.Progress.CampaignsTotal)
	})
	if err != nil {
		log.Fatal(err)
	}
	if st.State != capi.StateDone {
		log.Fatalf("sweep ended %s: %s", st.State, st.Error)
	}
	rendered, err := client.Results(ctx, reply.Fingerprint)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(string(rendered))
}
