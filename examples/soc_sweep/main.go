// soc_sweep reproduces Table I: soft-error campaigns across all ten PULP
// SoC configurations, reporting per-module SER, cluster counts and total
// SET/SEU cross-sections. Expect the paper's trends: bus and memory above
// CPU logic, SER growing with memory size / bus width / core count, and
// the rad-hard SRAM of SoC10 collapsing the memory column.
package main

import (
	"log"
	"os"

	"repro/internal/ssresf"
)

func main() {
	ec := ssresf.DefaultExperimentConfig(false)
	rows, err := ssresf.TableI(ec)
	if err != nil {
		log.Fatal(err)
	}
	ssresf.RenderTableI(os.Stdout, rows)
}
