// Command benchgate guards the warm-start speedup against regressions:
// it compares a freshly generated BENCH_warmstart.json with the committed
// baseline and fails when any baseline entry's evals_reduction_x — the
// eventsim headline, the levelsim one, and the compare_vcd detector
// variant alike — fell more than the allowed fraction below it, or when
// an entry whose baseline warm-started stopped warm-starting (the
// warm-start path silently degrading to cold replay would otherwise show
// up only as a reduction of ~1x, which a generous margin could mask
// until the next rebaseline). `make bench-smoke` (and CI through it)
// snapshots the committed file before the benchmark overwrites it and
// runs this gate afterwards.
//
// Cell-eval counts are deterministic, so the gate needs no statistical
// slack for machine noise; the 20% default margin only absorbs legitimate
// small shifts (e.g. sampling-plan changes moving strikes around).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// benchEntry is the per-engine slice of BENCH_warmstart.json this gate
// cares about; unknown fields are ignored on purpose.
type benchEntry struct {
	Injections      int     `json:"injections"`
	EvalsReductionX float64 `json:"evals_reduction_x"`
	WallReductionX  float64 `json:"wall_reduction_x"`
	WarmStarts      uint64  `json:"warm_starts"`
	DeltaRestores   uint64  `json:"delta_restores"`
	WarmInjectWall  int64   `json:"warm_inject_wall_ns"`
	RestoreWall     int64   `json:"restore_wall_ns"`
	ChecksumWall    int64   `json:"checksum_wall_ns"`
}

// restoreShare is the fraction of warm-injection wall time spent inside
// engine restores. Raw wall times shift with the machine, but this
// within-run ratio is machine-independent to first order, so its growth
// is gateable: a restore path that got relatively more expensive (e.g.
// the delta path silently falling back to full snapshot copies) shows up
// here long before it dents the headline reduction.
func (e benchEntry) restoreShare() float64 {
	if e.WarmInjectWall <= 0 {
		return 0
	}
	return float64(e.RestoreWall) / float64(e.WarmInjectWall)
}

// checksumShare is the fraction of warm-injection wall time the
// integrity checksum (canonical encode + sha256 over the shard payload)
// would add per shard. With -audit-frac=0 this stamp is the integrity
// subsystem's entire steady-state cost, so it is gated absolutely: a
// share past the ceiling means checksumming went from noise to tax.
func (e benchEntry) checksumShare() float64 {
	if e.WarmInjectWall <= 0 {
		return 0
	}
	return float64(e.ChecksumWall) / float64(e.WarmInjectWall)
}

func main() {
	baseline := flag.String("baseline", "", "committed benchmark metrics (required)")
	fresh := flag.String("new", "BENCH_warmstart.json", "freshly generated benchmark metrics")
	maxRegress := flag.Float64("max-regress", 0.20, "largest tolerated fractional drop of evals_reduction_x, largest tolerated fractional growth of the restore wall share, and the absolute ceiling on the integrity-checksum share of warm wall")
	flag.Parse()
	if *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline is required")
		os.Exit(2)
	}
	if err := gate(*baseline, *fresh, *maxRegress, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func readBench(path string) (map[string]benchEntry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]benchEntry
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	return m, nil
}

// gate fails when any engine present in the baseline regressed or went
// missing; engines newly added to the fresh file pass through freely.
func gate(baselinePath, freshPath string, maxRegress float64, out *os.File) error {
	base, err := readBench(baselinePath)
	if err != nil {
		return err
	}
	got, err := readBench(freshPath)
	if err != nil {
		return err
	}
	if len(base) == 0 {
		return fmt.Errorf("baseline %s holds no engines", baselinePath)
	}
	for engine, b := range base {
		g, ok := got[engine]
		if !ok {
			return fmt.Errorf("engine %q present in baseline but missing from %s", engine, freshPath)
		}
		floor := b.EvalsReductionX * (1 - maxRegress)
		if g.EvalsReductionX < floor {
			return fmt.Errorf("%s: evals_reduction_x %.2f regressed below %.2f (baseline %.2f, max regression %.0f%%)",
				engine, g.EvalsReductionX, floor, b.EvalsReductionX, 100*maxRegress)
		}
		if b.WarmStarts > 0 && g.WarmStarts == 0 {
			return fmt.Errorf("%s: baseline warm-started %d injections but the fresh run warm-started none — the warm path degraded to cold replay",
				engine, b.WarmStarts)
		}
		// Restore-wall gate: compare the within-run share of warm wall
		// spent restoring, not raw nanoseconds — the share cancels the
		// machine's speed out of both sides. Baselines without restore
		// timing (older files, or a variant that never restores) skip it.
		if bShare := b.restoreShare(); bShare > 0 {
			ceiling := bShare * (1 + maxRegress)
			if gShare := g.restoreShare(); gShare > ceiling {
				return fmt.Errorf("%s: restore share of warm wall %.1f%% grew past %.1f%% (baseline %.1f%%, max growth %.0f%%) — restore_wall_ns %d over warm_inject_wall_ns %d",
					engine, 100*gShare, 100*ceiling, 100*bShare, 100*maxRegress, g.RestoreWall, g.WarmInjectWall)
			}
		}
		// Checksum gate: absolute, not baseline-relative — the integrity
		// stamp must stay a rounding error on warm wall regardless of what
		// any earlier run measured. Entries without checksum timing (older
		// baselines) simply have share 0 and pass.
		if cShare := g.checksumShare(); cShare > maxRegress {
			return fmt.Errorf("%s: checksum share of warm wall %.1f%% exceeds %.0f%% — with -audit-frac=0 the integrity stamp is the whole overhead budget (checksum_wall_ns %d over warm_inject_wall_ns %d)",
				engine, 100*cShare, 100*maxRegress, g.ChecksumWall, g.WarmInjectWall)
		}
		fmt.Fprintf(out, "benchgate: %s ok: evals_reduction_x %.2f vs baseline %.2f (floor %.2f), warm_starts %d, delta_restores %d, restore share %.1f%%, checksum share %.2f%%\n",
			engine, g.EvalsReductionX, b.EvalsReductionX, floor, g.WarmStarts, g.DeltaRestores, 100*g.restoreShare(), 100*g.checksumShare())
	}
	return nil
}
