package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baselineJSON = `{
  "eventsim": {"injections": 150, "evals_reduction_x": 12.5, "wall_reduction_x": 11.7},
  "levelsim": {"injections": 30, "evals_reduction_x": 3.1, "wall_reduction_x": 3.0}
}`

func TestGatePassesWithinMargin(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baselineJSON)
	fresh := writeBench(t, dir, "fresh.json", `{
	  "eventsim": {"injections": 150, "evals_reduction_x": 10.2},
	  "levelsim": {"injections": 30, "evals_reduction_x": 3.4}
	}`)
	if err := gate(base, fresh, 0.20, os.Stdout); err != nil {
		t.Fatalf("10.2 vs 12.5 is inside the 20%% margin: %v", err)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baselineJSON)
	fresh := writeBench(t, dir, "fresh.json", `{
	  "eventsim": {"injections": 150, "evals_reduction_x": 9.0},
	  "levelsim": {"injections": 30, "evals_reduction_x": 3.4}
	}`)
	err := gate(base, fresh, 0.20, os.Stdout)
	if err == nil {
		t.Fatal("9.0 vs baseline 12.5 must fail the 20% gate")
	}
	if !strings.Contains(err.Error(), "eventsim") {
		t.Fatalf("error %q does not name the regressed engine", err)
	}
}

func TestGateFailsOnMissingEngine(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baselineJSON)
	fresh := writeBench(t, dir, "fresh.json", `{
	  "eventsim": {"injections": 150, "evals_reduction_x": 12.6}
	}`)
	if err := gate(base, fresh, 0.20, os.Stdout); err == nil {
		t.Fatal("dropped levelsim entry must fail the gate")
	}
}

func TestGateAgainstCommittedBaseline(t *testing.T) {
	// The committed BENCH_warmstart.json must gate cleanly against itself —
	// this is exactly what `make bench-smoke` does on an unchanged tree.
	committed := "../../BENCH_warmstart.json"
	if _, err := os.Stat(committed); err != nil {
		t.Skip("no committed benchmark file")
	}
	if err := gate(committed, committed, 0.20, os.Stdout); err != nil {
		t.Fatalf("committed baseline fails against itself: %v", err)
	}
}

func TestGateFailsOnRestoreShareGrowth(t *testing.T) {
	dir := t.TempDir()
	// Baseline: restores are 2% of warm wall. Fresh: 10% — the delta
	// path degraded — while the headline reduction is unchanged.
	base := writeBench(t, dir, "base.json", `{
	  "eventsim": {"injections": 150, "evals_reduction_x": 12.5, "warm_inject_wall_ns": 50000000, "restore_wall_ns": 1000000}
	}`)
	fresh := writeBench(t, dir, "fresh.json", `{
	  "eventsim": {"injections": 150, "evals_reduction_x": 12.5, "warm_inject_wall_ns": 50000000, "restore_wall_ns": 5000000}
	}`)
	err := gate(base, fresh, 0.20, os.Stdout)
	if err == nil {
		t.Fatal("restore share growing 2% -> 10% must fail the 20% gate")
	}
	if !strings.Contains(err.Error(), "restore share") {
		t.Fatalf("error %q does not name the restore share", err)
	}
}

func TestGatePassesRestoreShareWithinMargin(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", `{
	  "eventsim": {"injections": 150, "evals_reduction_x": 12.5, "warm_inject_wall_ns": 50000000, "restore_wall_ns": 1000000}
	}`)
	// Same share on a machine twice as slow: raw restore wall doubled,
	// but so did warm wall — the ratio gate must not trip.
	fresh := writeBench(t, dir, "fresh.json", `{
	  "eventsim": {"injections": 150, "evals_reduction_x": 12.5, "warm_inject_wall_ns": 100000000, "restore_wall_ns": 2200000}
	}`)
	if err := gate(base, fresh, 0.20, os.Stdout); err != nil {
		t.Fatalf("2.2%% vs baseline 2%% share is inside the 20%% growth margin: %v", err)
	}
}

func TestGateSkipsRestoreShareWithoutBaselineTiming(t *testing.T) {
	dir := t.TempDir()
	// Baseline predates restore timing (fields absent -> zero); the share
	// gate must not divide by zero or reject the fresh run.
	base := writeBench(t, dir, "base.json", baselineJSON)
	fresh := writeBench(t, dir, "fresh.json", `{
	  "eventsim": {"injections": 150, "evals_reduction_x": 12.5, "warm_inject_wall_ns": 50000000, "restore_wall_ns": 40000000},
	  "levelsim": {"injections": 30, "evals_reduction_x": 3.1}
	}`)
	if err := gate(base, fresh, 0.20, os.Stdout); err != nil {
		t.Fatalf("baseline without restore timing must skip the share gate: %v", err)
	}
}

func TestGateFailsOnChecksumShareOverCeiling(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baselineJSON)
	// Checksumming eats 25% of warm wall — with -audit-frac=0 that stamp
	// is the integrity subsystem's entire overhead, and it blew the
	// absolute 20% budget even though nothing regressed vs baseline.
	fresh := writeBench(t, dir, "fresh.json", `{
	  "eventsim": {"injections": 150, "evals_reduction_x": 12.5, "warm_inject_wall_ns": 50000000, "checksum_wall_ns": 12500000},
	  "levelsim": {"injections": 30, "evals_reduction_x": 3.1}
	}`)
	err := gate(base, fresh, 0.20, os.Stdout)
	if err == nil {
		t.Fatal("checksum share of 25% must fail the absolute 20% ceiling")
	}
	if !strings.Contains(err.Error(), "checksum share") {
		t.Fatalf("error %q does not name the checksum share", err)
	}
}

func TestGatePassesChecksumShareUnderCeiling(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baselineJSON)
	// A realistic stamp: well under 1% of warm wall. Entries without
	// checksum timing (levelsim here) skip the gate entirely.
	fresh := writeBench(t, dir, "fresh.json", `{
	  "eventsim": {"injections": 150, "evals_reduction_x": 12.5, "warm_inject_wall_ns": 50000000, "checksum_wall_ns": 150000},
	  "levelsim": {"injections": 30, "evals_reduction_x": 3.1}
	}`)
	if err := gate(base, fresh, 0.20, os.Stdout); err != nil {
		t.Fatalf("0.3%% checksum share is far under the ceiling: %v", err)
	}
}

func TestGateFailsWhenWarmStartsVanish(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", `{
	  "compare_vcd": {"injections": 60, "evals_reduction_x": 5.0, "warm_starts": 60}
	}`)
	fresh := writeBench(t, dir, "fresh.json", `{
	  "compare_vcd": {"injections": 60, "evals_reduction_x": 5.1, "warm_starts": 0}
	}`)
	err := gate(base, fresh, 0.20, os.Stdout)
	if err == nil {
		t.Fatal("a variant whose baseline warm-starts must fail the gate when the fresh run never warm-starts")
	}
	if !strings.Contains(err.Error(), "compare_vcd") {
		t.Fatalf("error %q does not name the degraded variant", err)
	}
}
