package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/capi"
	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/runstore"
	"repro/internal/shard"
	"repro/internal/ssresf"
)

// safeBuf is a concurrency-safe output sink: workers, coordinators and
// the test all touch these buffers from different goroutines.
type safeBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *safeBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func (s *safeBuf) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Len()
}

// waitSweepDone polls a sweep until it reports done, tolerating the
// coordinator being unreachable mid-poll — the window between a leader
// crash and the standby's takeover.
func waitSweepDone(t *testing.T, ctx context.Context, client *capi.Client, fp string, within time.Duration) capi.SweepStatus {
	t.Helper()
	deadline := time.Now().Add(within)
	var last error
	for time.Now().Before(deadline) {
		st, err := client.Sweep(ctx, fp)
		if err == nil {
			if st.State == capi.StateDone {
				return st
			}
			if capi.TerminalState(st.State) {
				t.Fatalf("sweep ended %q: %s", st.State, st.Error)
			}
		}
		last = err
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("sweep %.12s never completed (last error: %v)", fp, last)
	return capi.SweepStatus{}
}

// countShards totals the shard records across a journal snapshot.
func countShards(m map[string]map[int]*shard.Partial) int {
	n := 0
	for _, shards := range m {
		n += len(shards)
	}
	return n
}

// TestCoordinatorFailover is the availability acceptance gate: a leader
// serving a submitted grid is crash-stopped mid-sweep while workers are
// live and one shard is held by a zombie worker under the old epoch. A
// warm standby tailing the journal must take over — rebuilding the sweep
// from its journaled params and the finished shards from their journaled
// partials — and the fleet must drain the rest of the grid to a
// byte-identical result. No shard journaled before the crash may be
// re-simulated, and the zombie's completion, fenced by its stale epoch,
// must be refused with CodeStaleEpoch.
func TestCoordinatorFailover(t *testing.T) {
	ec := ssresf.DefaultExperimentConfig(true)
	want := inProcessLETReference(t, ec, []int{1})
	journal := filepath.Join(t.TempDir(), "fleet.jsonl")
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Minute)
	defer cancel()

	// One registry shared by both coordinator incarnations and both
	// workers, so the post-mortem scrape sees fleet-wide totals: the
	// fence must show up in shard_fenced_total, the outage in
	// capi_retries_total.
	reg := obs.NewRegistry()

	// The leader: short leader lease so the standby notices the crash
	// quickly, long shard leases and speculation off so the zombie's
	// shard stays held until the failover — only the takeover (which
	// forgets old lease IDs) can free it.
	crash := make(chan struct{})
	leaderOut := &safeBuf{}
	url, leaderErr := startServe(t, serveOpts{
		shards:     2,
		journal:    journal,
		leaseTTL:   time.Minute,
		leaderTTL:  300 * time.Millisecond,
		linger:     30 * time.Second,
		specFactor: -1,
		crash:      crash,
		obsReg:     reg,
	}, leaderOut)

	client := capi.NewClient(url)
	reply, err := client.Submit(ctx, quickLETParams(1))
	if err != nil {
		t.Fatal(err)
	}

	// The zombie leases a shard under epoch 1 and then sits on it.
	zombie := leaseRaw(t, url, "zombie")
	if zombie.Epoch != 1 {
		t.Fatalf("first leader granted epoch %d, want 1", zombie.Epoch)
	}

	// The warm standby tails the journal, ready to take over. Same
	// knobs as the leader; it inherits the leader's address from the
	// leader-lease file, so workers keep their URL across the failover.
	standbyOut := &safeBuf{}
	standbyErr := make(chan error, 1)
	go func() {
		standbyErr <- standby(serveOpts{
			shards:     2,
			journal:    journal,
			leaseTTL:   time.Minute,
			leaderTTL:  300 * time.Millisecond,
			linger:     10 * time.Second,
			specFactor: -1,
			obsReg:     reg,
		}, standbyOut)
	}()

	// Two live workers ride through the failover on their retry budgets.
	w1Out, w2Out := &safeBuf{}, &safeBuf{}
	workErr := make(chan error, 2)
	go func() {
		workErr <- work(ctx, workOpts{url: url, name: "w1", poll: 25 * time.Millisecond, out: w1Out, obsReg: reg})
	}()
	go func() {
		workErr <- work(ctx, workOpts{url: url, name: "w2", poll: 25 * time.Millisecond, out: w2Out, obsReg: reg})
	}()

	// Kill the leader mid-grid: as soon as at least one shard is
	// journaled (but with the zombie's shard still held, the grid cannot
	// be finished), snapshot what the journal holds and crash-stop.
	var journaledAtKill map[string]map[int]*shard.Partial
	killBy := time.Now().Add(3 * time.Minute)
	for {
		m, _, err := runstore.LoadAll(journal)
		if err == nil && countShards(m) >= 1 {
			journaledAtKill = m
			break
		}
		if time.Now().After(killBy) {
			t.Fatalf("no shard journaled before the kill deadline (journal err: %v)", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(crash)
	if err := <-leaderErr; err == nil || !strings.Contains(err.Error(), "crash-stopped") {
		t.Fatalf("crashed leader exited with %v, want crash-stopped error", err)
	}

	// The standby must promote itself and the fleet finish the grid.
	waitSweepDone(t, ctx, client, reply.Fingerprint, 4*time.Minute)
	got, err := client.Results(ctx, reply.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-failover results differ from the in-process reference:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if out := standbyOut.String(); !strings.Contains(out, "taking over") {
		t.Fatalf("standby never announced its takeover:\n%s", out)
	}

	// Zero re-simulation: the promoted standby loads every journaled
	// partial as done, so a shard journaled before the crash must never
	// be handed out — and thus completed — a second time. Exactly one
	// "done" line per journaled shard across the whole fleet.
	full := w1Out.String() + w2Out.String()
	for fp, shards := range journaledAtKill {
		for idx := range shards {
			// The range attr only appears on "shard done" lines, never on
			// "shard dropped" ones, so this counts completions exactly.
			marker := fmt.Sprintf("campaign=%.12s shard=%d range", fp, idx)
			if n := strings.Count(full, marker); n != 1 {
				t.Fatalf("shard %d of %.12s was journaled before the crash but completed %d times:\n%s", idx, fp, n, full)
			}
		}
	}

	// The zombie wakes up and delivers its shard under the old epoch.
	// The shard is long done (the sweep is), so the new coordinator must
	// fence the stale completion rather than double-merge it.
	built, err := shard.Build(zombie.Spec.Campaign)
	if err != nil {
		t.Fatal(err)
	}
	p, err := shard.ExecuteOn(built, zombie.Spec)
	if err != nil {
		t.Fatal(err)
	}
	err = client.Complete(ctx, zombie.Spec.Fingerprint, zombie.ID, zombie.Epoch, p)
	var ce *capi.Error
	if !errors.As(err, &ce) || ce.Code != capi.CodeStaleEpoch {
		t.Fatalf("stale-epoch completion returned %v, want %s refusal", err, capi.CodeStaleEpoch)
	}

	// The shared registry must have recorded the failover's signature:
	// the fence just provoked, and the client retries the workers burned
	// riding out the dead-leader window.
	sc, err := obs.ParseText(reg.Expose())
	if err != nil {
		t.Fatalf("post-failover exposition rejected by the strict parser: %v", err)
	}
	if v, ok := sc.Value("shard_fenced_total"); !ok || v < 1 {
		t.Fatalf("shard_fenced_total = %v, %v; want >= 1 after the zombie's stale completion", v, ok)
	}
	if v, ok := sc.Value("capi_retries_total"); !ok || v < 1 {
		t.Fatalf("capi_retries_total = %v, %v; want >= 1 across the leader outage", v, ok)
	}

	// Workers exit on the drained signal; their errors are nil.
	for i := 0; i < 2; i++ {
		if err := <-workErr; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	if err := <-standbyErr; err != nil {
		t.Fatalf("promoted standby: %v", err)
	}
}

// chaosClient wraps a capi client around a fresh seeded chaos transport
// with a tight retry schedule, returning both. Both report into reg:
// the transport's injected-fault counters and the client's retry
// counters land in the same scrape.
func chaosClient(url string, seed int64, reg *obs.Registry) (*capi.Client, *chaos.Transport) {
	tr := chaos.New(chaos.Config{
		Seed:     seed,
		Drop:     0.05,
		Err503:   0.02,
		Reset:    0.05,
		Dup:      0.05,
		Delay:    0.10,
		MaxDelay: 30 * time.Millisecond,
	})
	tr.SetObs(reg)
	c := capi.NewClient(url)
	c.HTTP = &http.Client{Transport: tr, Timeout: 30 * time.Second}
	c.Retries = 8
	c.RetryBase = 10 * time.Millisecond
	c.RetryCap = 100 * time.Millisecond
	c.Obs = reg
	return c, tr
}

// TestSweepUnderChaos drains a quick grid with every worker's (and the
// submitter's) HTTP traffic routed through seeded chaos transports —
// dropped connections, injected 503s, resets after the server committed,
// duplicated POSTs, delays. The client retry budgets plus the
// coordinator's idempotent completion handling must still produce the
// byte-identical grid, and every fault class must actually have fired.
func TestSweepUnderChaos(t *testing.T) {
	ec := ssresf.DefaultExperimentConfig(true)
	want := inProcessLETReference(t, ec, []int{1})
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Minute)
	defer cancel()

	// Every chaos transport and client reports into one registry, so the
	// end-of-run scrape proves per-class injection counts from the same
	// surface an operator would use.
	reg := obs.NewRegistry()
	serveOut := &safeBuf{}
	url, serveErr := startServe(t, serveOpts{
		shards:   2,
		leaseTTL: 2 * time.Second,
		linger:   5 * time.Second,
		obsReg:   reg,
	}, serveOut)

	submit, subTr := chaosClient(url, 41, reg)
	reply, err := submit.Submit(ctx, quickLETParams(1))
	if err != nil {
		t.Fatalf("submit through chaos: %v", err)
	}

	c1, tr1 := chaosClient(url, 42, reg)
	c2, tr2 := chaosClient(url, 43, reg)
	w1Out, w2Out := &safeBuf{}, &safeBuf{}
	workErr := make(chan error, 2)
	go func() {
		workErr <- work(ctx, workOpts{url: url, name: "cw1", poll: 25 * time.Millisecond, client: c1, out: w1Out})
	}()
	go func() {
		workErr <- work(ctx, workOpts{url: url, name: "cw2", poll: 25 * time.Millisecond, client: c2, out: w2Out})
	}()

	watch := capi.NewClient(url)
	if _, err := watch.WaitSweep(ctx, reply.Fingerprint, nil); err != nil {
		t.Fatal(err)
	}
	got, err := watch.Results(ctx, reply.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("results under chaos differ from the in-process reference:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	for i := 0; i < 2; i++ {
		if err := <-workErr; err != nil {
			t.Fatalf("worker under chaos: %v\nw1:\n%s\nw2:\n%s", err, w1Out.String(), w2Out.String())
		}
	}

	// The run only counts as a chaos run if every fault class fired. A
	// quick grid drains in a handful of requests — too few to guarantee
	// that — so keep the same transports under load with harmless lease
	// probes (the drained coordinator answers 410) until each class has
	// fired at least once.
	transports := []*chaos.Transport{subTr, tr1, tr2}
	sum := func() chaos.Stats {
		var total chaos.Stats
		for _, tr := range transports {
			s := tr.Stats()
			total.Requests += s.Requests
			total.Drops += s.Drops
			total.Errs503 += s.Errs503
			total.Resets += s.Resets
			total.Dups += s.Dups
			total.Delays += s.Delays
		}
		return total
	}
	probeBy := time.Now().Add(60 * time.Second)
	for i := 0; ; i++ {
		total := sum()
		if total.Drops > 0 && total.Errs503 > 0 && total.Resets > 0 && total.Dups > 0 && total.Delays > 0 {
			break
		}
		if time.Now().After(probeBy) {
			t.Fatalf("a fault class never fired across %d requests: %+v", total.Requests, total)
		}
		hc := &http.Client{Transport: transports[i%len(transports)], Timeout: 5 * time.Second}
		req, err := http.NewRequest(http.MethodPost, url+"/v1/lease", bytes.NewReader([]byte(`{"worker":"chaos-probe"}`)))
		if err != nil {
			t.Fatal(err)
		}
		if resp, err := hc.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}

	// The same evidence through the obs registry: chaos_injected_total
	// must be nonzero for every class, and the clients must have spent
	// retries surviving the faults. The chaos-smoke gate scrapes these
	// series rather than reaching into Stats.
	sc, err := obs.ParseText(reg.Expose())
	if err != nil {
		t.Fatalf("chaos-run exposition rejected by the strict parser: %v", err)
	}
	for _, class := range []string{"drop", "err503", "reset", "dup", "delay"} {
		if v, ok := sc.Value("chaos_injected_total", "class", class); !ok || v < 1 {
			t.Fatalf("chaos_injected_total{class=%q} = %v, %v; want >= 1", class, v, ok)
		}
	}
	if v, ok := sc.Value("capi_retries_total"); !ok || v < 1 {
		t.Fatalf("capi_retries_total = %v, %v; want >= 1 under chaos", v, ok)
	}

	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestServeGracefulDrain: on SIGTERM the coordinator must refuse new
// leases with 503 + Retry-After, wait out in-flight shards, release its
// leadership, and exit cleanly.
func TestServeGracefulDrain(t *testing.T) {
	cs := e2eSpec()
	journal := filepath.Join(t.TempDir(), "drain.jsonl")
	sig := make(chan os.Signal, 1)
	out := &safeBuf{}
	url, serveErr := startServe(t, serveOpts{
		grid:       gridPtr(singleCampaignGrid(cs)),
		single:     true,
		shards:     2,
		journal:    journal,
		leaseTTL:   time.Minute,
		linger:     time.Second,
		drainGrace: 20 * time.Second,
		signals:    sig,
	}, out)

	// Hold both shards so a post-signal lease probe can't grab one.
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	heldA := leaseRaw(t, url, "slow")
	heldB := leaseRaw(t, url, "slow")

	sig <- syscall.SIGTERM

	// Leases must start bouncing with the back-off hint.
	probeBy := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Post(url+"/v1/lease", "application/json", strings.NewReader(`{"worker":"probe"}`))
		if err == nil {
			refused := resp.StatusCode == http.StatusServiceUnavailable
			hint := resp.Header.Get("Retry-After")
			resp.Body.Close()
			if refused {
				if hint == "" {
					t.Fatal("draining coordinator refused a lease without a Retry-After hint")
				}
				break
			}
		}
		if time.Now().After(probeBy) {
			t.Fatal("coordinator never started refusing leases after SIGTERM")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// In-flight work still lands: complete both held shards, which
	// drains the lease count to zero and lets the coordinator exit.
	client := capi.NewClient(url)
	built, err := shard.Build(cs)
	if err != nil {
		t.Fatal(err)
	}
	for _, held := range []*shard.Lease{heldA, heldB} {
		p, err := shard.ExecuteOn(built, held.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := client.Complete(ctx, held.Spec.Fingerprint, held.ID, held.Epoch, p); err != nil {
			t.Fatalf("completing shard %d during drain: %v", held.Spec.Index, err)
		}
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve after drain: %v", err)
	}
	if s := out.String(); !strings.Contains(s, "draining") {
		t.Fatalf("coordinator never logged the drain:\n%s", s)
	}
	lease, err := runstore.ReadLeaderLease(journal + leaderSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if !lease.Expired(time.Now()) {
		t.Fatalf("leadership not released on exit: %+v", lease)
	}
}

// TestWorkerMaxOffline: a worker pointed at a dead coordinator with
// -max-offline must give up with a non-zero exit once the unreachable
// streak exceeds the window — not spin through its attempt budget.
func TestWorkerMaxOffline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	ln.Close() // nothing is listening: every lease attempt fails fast

	client := capi.NewClient(url)
	client.Retries = -1 // single attempt per lease call
	out := &safeBuf{}
	start := time.Now()
	err = work(context.Background(), workOpts{
		url:        url,
		name:       "stranded",
		poll:       5 * time.Millisecond,
		maxOffline: 150 * time.Millisecond,
		client:     client,
		out:        out,
	})
	if err == nil || !strings.Contains(err.Error(), "max-offline") {
		t.Fatalf("stranded worker returned %v, want max-offline error", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("worker took %v to give up on a 150ms window", elapsed)
	}
	if s := out.String(); !strings.Contains(s, "giving up") {
		t.Fatalf("worker never logged its give-up:\n%s", s)
	}
}
