package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/capi"
	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/ssresf"
)

// cutOnceTransport severs the first watch stream after its first
// successful body read — a deterministic mid-stream disconnect, unlike
// the chaos transport's whole-response resets — so the reconnect path
// (Last-Event-ID resume, duplicate suppression) is exercised on every
// run, not just when a random fault lands inside the stream.
type cutOnceTransport struct {
	base http.RoundTripper
	cut  atomic.Bool
}

func (c *cutOnceTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := c.base.RoundTrip(req)
	if err != nil || !strings.Contains(req.URL.RawQuery, "watch=1") {
		return resp, err
	}
	if c.cut.CompareAndSwap(false, true) {
		resp.Body = &cutAfterFirstRead{rc: resp.Body}
	}
	return resp, nil
}

type cutAfterFirstRead struct {
	rc    io.ReadCloser
	reads int
}

func (b *cutAfterFirstRead) Read(p []byte) (int, error) {
	if b.reads > 0 {
		b.rc.Close()
		return 0, fmt.Errorf("injected mid-stream disconnect")
	}
	b.reads++
	return b.rc.Read(p)
}

func (b *cutAfterFirstRead) Close() error { return b.rc.Close() }

// eventRecorder collects watch events and verifies the stream contract.
type eventRecorder struct {
	mu     sync.Mutex
	events []capi.SweepEvent
}

func (r *eventRecorder) record(ev capi.SweepEvent) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

func (r *eventRecorder) snapshot() []capi.SweepEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]capi.SweepEvent(nil), r.events...)
}

// checkGapFree asserts the recorded sequence numbers are strictly
// contiguous starting at 1 — no gap, no duplicate, no reordering — the
// exactly-once delivery WatchSweep promises across reconnects.
func checkGapFree(t *testing.T, evs []capi.SweepEvent) {
	t.Helper()
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d (stream must be gap-free from 1)", i, ev.Seq, i+1)
		}
	}
}

// TestWatchMatchesPoll is the acceptance gate for the live watch path: a
// sweep followed over SSE — including a forced mid-stream disconnect and
// Last-Event-ID resume — reaches the same terminal state as a polling
// client, both fetch byte-identical rendered results, and that output is
// byte-identical to the uninstrumented in-process reference. The watch
// stream itself must be gap-free, opening with the submit event and
// closing with done, and the terminal status must carry the sweep's
// cost attribution block.
func TestWatchMatchesPoll(t *testing.T) {
	ec := ssresf.DefaultExperimentConfig(true)
	want := inProcessLETReference(t, ec, []int{1})
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Minute)
	defer cancel()

	serveOut := &safeBuf{}
	url, serveErr := startServe(t, serveOpts{
		shards:   2,
		leaseTTL: time.Minute,
		linger:   10 * time.Second,
	}, serveOut)

	client := capi.NewClient(url)
	reply, err := client.Submit(ctx, quickLETParams(1))
	if err != nil {
		t.Fatal(err)
	}

	// The watcher's transport cuts the first stream after one read, so
	// this test always crosses a reconnect boundary mid-sweep.
	cut := &cutOnceTransport{base: http.DefaultTransport}
	watcher := capi.NewClient(url)
	watcher.HTTP = &http.Client{Transport: cut}
	rec := &eventRecorder{}
	type watchResult struct {
		st  capi.SweepStatus
		err error
	}
	watchDone := make(chan watchResult, 1)
	go func() {
		st, err := watcher.WatchSweep(ctx, reply.Fingerprint, rec.record)
		watchDone <- watchResult{st, err}
	}()

	wOut := &safeBuf{}
	workDone := make(chan error, 1)
	go func() {
		workDone <- work(ctx, workOpts{url: url, name: "ww1", poll: 25 * time.Millisecond, out: wOut})
	}()

	stPoll, err := client.WaitSweep(ctx, reply.Fingerprint, nil)
	if err != nil {
		t.Fatalf("poll: %v\n%s", err, serveOut.String())
	}
	wr := <-watchDone
	if wr.err != nil {
		t.Fatalf("watch: %v\n%s", wr.err, serveOut.String())
	}
	if !cut.cut.Load() {
		t.Fatal("the injected mid-stream disconnect never fired")
	}

	// Same terminal verdict through both paths.
	if wr.st.State != stPoll.State || wr.st.State != capi.StateDone {
		t.Fatalf("watch ended %q, poll ended %q; want both done", wr.st.State, stPoll.State)
	}
	if wr.st.Progress.CampaignsDone != stPoll.Progress.CampaignsDone {
		t.Fatalf("watch saw %d campaigns done, poll %d", wr.st.Progress.CampaignsDone, stPoll.Progress.CampaignsDone)
	}

	// The event stream is gap-free across the reconnect, starts with the
	// submit event and ends with done.
	evs := rec.snapshot()
	checkGapFree(t, evs)
	if len(evs) < 3 || evs[0].Type != "submit" || evs[len(evs)-1].Type != "done" {
		t.Fatalf("stream shape wrong: %d events, first %q, last %q", len(evs), evs[0].Type, evs[len(evs)-1].Type)
	}

	// Cost attribution rode the terminal status: both campaigns' shards
	// accounted exactly once, with real simulation spend behind them.
	if wr.st.Cost == nil {
		t.Fatal("terminal watch status carries no cost block")
	}
	if wr.st.Cost.Shards != 4 || wr.st.Cost.InjectEvals == 0 || wr.st.Cost.InjectWallNS <= 0 {
		t.Fatalf("cost block %+v; want 4 shards with nonzero evals and wall time", wr.st.Cost)
	}

	// Byte-identity: watch-fetched == poll-fetched == uninstrumented
	// in-process reference.
	gotWatch, err := watcher.Results(ctx, reply.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	gotPoll, err := client.Results(ctx, reply.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotWatch, gotPoll) {
		t.Fatal("watch-fetched results differ from poll-fetched results")
	}
	if !bytes.Equal(gotWatch, want) {
		t.Fatalf("watched sweep output diverges from the in-process reference:\n--- got ---\n%s\n--- want ---\n%s", gotWatch, want)
	}

	if err := <-workDone; err != nil {
		t.Fatalf("worker: %v\n%s", err, wOut.String())
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v\n%s", err, serveOut.String())
	}
}

// TestFleetFederation is the metrics-federation gate: a worker pushing
// its registry on a short cadence must surface on the coordinator's
// GET /metrics/fleet with every pushed series re-labeled by worker, the
// liveness gauges accounting for it, and the per-sweep cost series
// (sweep_cost_*) attributed to the sweep it drained — while the sweep's
// own status reports the matching cost block.
func TestFleetFederation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Minute)
	defer cancel()

	serveOut := &safeBuf{}
	url, serveErr := startServe(t, serveOpts{
		shards:   2,
		leaseTTL: time.Minute,
		linger:   15 * time.Second,
	}, serveOut)

	client := capi.NewClient(url)
	reply, err := client.Submit(ctx, quickLETParams(1))
	if err != nil {
		t.Fatal(err)
	}

	wReg := obs.NewRegistry()
	wOut := &safeBuf{}
	workDone := make(chan error, 1)
	go func() {
		workDone <- work(ctx, workOpts{
			url: url, name: "fw1", poll: 25 * time.Millisecond, out: wOut,
			push: 250 * time.Millisecond, obsReg: wReg,
		})
	}()

	st, err := client.WaitSweep(ctx, reply.Fingerprint, nil)
	if err != nil {
		t.Fatalf("wait: %v\n%s", err, serveOut.String())
	}
	if st.State != capi.StateDone {
		t.Fatalf("sweep ended %q: %s", st.State, st.Error)
	}
	if st.Cost == nil || st.Cost.Shards != 4 || st.Cost.InjectEvals == 0 {
		t.Fatalf("sweep cost block %+v; want 4 shards with nonzero evals", st.Cost)
	}
	// The worker's exit hook delivers one final push; scrape after it.
	if err := <-workDone; err != nil {
		t.Fatalf("worker: %v\n%s", err, wOut.String())
	}

	sc := scrapeProm(t, url+"/metrics/fleet")
	for key, s := range sc.Series {
		if s.Name == "fleet_workers" {
			continue
		}
		if s.Labels["worker"] != "fw1" {
			t.Errorf("federated series %s not attributed to the pushing worker", key)
		}
	}
	live, okLive := sc.Value("fleet_workers", "state", "live")
	stale, okStale := sc.Value("fleet_workers", "state", "stale")
	if !okLive || !okStale || live+stale != 1 {
		t.Fatalf("fleet_workers live=%v stale=%v; want exactly one worker accounted", live, stale)
	}
	if live != 1 {
		t.Errorf("worker counted stale immediately after its final push (live=%v stale=%v)", live, stale)
	}
	if v, ok := sc.Value("fleet_pushes_total", "worker", "fw1"); !ok || v < 1 {
		t.Fatalf("fleet_pushes_total = %v, %v; want >= 1", v, ok)
	}

	// Per-sweep cost attribution, federated: the worker's executor minted
	// sweep_cost_* series labeled with this sweep's fp12, and they arrive
	// on the fleet surface carrying both the sweep and worker labels.
	fp := fp12(reply.Fingerprint)
	if v, ok := sc.Value("sweep_cost_shards_total", "sweep", fp, "worker", "fw1"); !ok || v != 4 {
		t.Fatalf("sweep_cost_shards_total{sweep=%q} = %v, %v; want 4", fp, v, ok)
	}
	for _, name := range []string{"sweep_cost_evals_total", "sweep_cost_shard_wall_ns_total"} {
		if v, ok := sc.Value(name, "sweep", fp, "worker", "fw1"); !ok || v <= 0 {
			t.Fatalf("%s{sweep=%q} = %v, %v; want > 0", name, fp, v, ok)
		}
	}

	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v\n%s", err, serveOut.String())
	}
}

// TestWatchSweepUnderChaos routes the watch client through a seeded
// chaos transport — dropped connections, synthesized 503s, whole-response
// resets, delays — and pins that the delivered event sequence is still
// gap-free and duplicate-free, and the terminal state matches a cleanly
// polled reference. (WatchSweep may legitimately fall back to polling if
// chaos exhausts its reconnect budget; the stream contract holds either
// way: every event delivered arrived exactly once, in order.)
func TestWatchSweepUnderChaos(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Minute)
	defer cancel()

	serveOut := &safeBuf{}
	url, serveErr := startServe(t, serveOpts{
		shards:   2,
		leaseTTL: time.Minute,
		linger:   10 * time.Second,
	}, serveOut)

	client := capi.NewClient(url)
	reply, err := client.Submit(ctx, quickLETParams(1))
	if err != nil {
		t.Fatal(err)
	}

	tr := chaos.New(chaos.Config{
		Seed:     97,
		Drop:     0.15,
		Err503:   0.10,
		Reset:    0.20,
		Delay:    0.20,
		MaxDelay: 30 * time.Millisecond,
	})
	watcher := capi.NewClient(url)
	watcher.HTTP = &http.Client{Transport: tr}
	watcher.Retries = 8
	watcher.RetryBase = 10 * time.Millisecond
	watcher.RetryCap = 100 * time.Millisecond
	rec := &eventRecorder{}
	type watchResult struct {
		st  capi.SweepStatus
		err error
	}
	watchDone := make(chan watchResult, 1)
	go func() {
		st, err := watcher.WatchSweep(ctx, reply.Fingerprint, rec.record)
		watchDone <- watchResult{st, err}
	}()

	wOut := &safeBuf{}
	workDone := make(chan error, 1)
	go func() {
		workDone <- work(ctx, workOpts{url: url, name: "cw1", poll: 25 * time.Millisecond, out: wOut})
	}()

	stPoll, err := client.WaitSweep(ctx, reply.Fingerprint, nil)
	if err != nil {
		t.Fatalf("poll: %v\n%s", err, serveOut.String())
	}
	wr := <-watchDone
	if wr.err != nil {
		t.Fatalf("watch under chaos: %v\n%s", wr.err, serveOut.String())
	}
	if wr.st.State != stPoll.State || wr.st.State != capi.StateDone {
		t.Fatalf("watch ended %q, poll ended %q; want both done", wr.st.State, stPoll.State)
	}
	checkGapFree(t, rec.snapshot())

	if err := <-workDone; err != nil {
		t.Fatalf("worker: %v\n%s", err, wOut.String())
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v\n%s", err, serveOut.String())
	}
}
