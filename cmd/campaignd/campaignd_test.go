package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/capi"
	"repro/internal/inject"
	"repro/internal/obs"
	"repro/internal/runstore"
	"repro/internal/shard"
	"repro/internal/ssresf"
	"repro/internal/sweep"
)

// gridPtr adapts a grid value to serveOpts' optional self-submission.
func gridPtr(g sweep.Grid) *sweep.Grid { return &g }

// e2eSpec is the small SoC1 campaign the end-to-end test distributes.
func e2eSpec() shard.CampaignSpec {
	cs := shard.SpecFromOptions(1, "memcpy", inject.DefaultOptions())
	cs.SampleFrac = 0.05
	cs.MinPer = 2
	cs.Seed = 7
	return cs
}

// startServe launches the coordinator on an ephemeral localhost port and
// returns its base URL plus the channel its exit error lands on.
func startServe(t *testing.T, opts serveOpts, stdout io.Writer) (string, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- serve(opts, ln, stdout) }()
	return "http://" + ln.Addr().String(), errCh
}

// leaseRaw performs one raw lease request, retrying while the
// coordinator is unreachable or still building its first campaign (204)
// — the e2e test's stand-in for a worker that dies mid-shard.
func leaseRaw(t *testing.T, url, worker string) *shard.Lease {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		l, err := leaseOnce(url, worker)
		if err != nil {
			t.Fatal(err)
		}
		if l != nil {
			return l
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator never granted a lease")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// leaseOnce returns (nil, nil) when the request should be retried: the
// coordinator is unreachable or answered 204 (still planning, or all
// shards leased out).
func leaseOnce(url, worker string) (*shard.Lease, error) {
	body, _ := json.Marshal(capi.LeaseRequest{Worker: worker})
	resp, err := http.Post(url+"/v1/lease", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var l shard.Lease
		if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
			return nil, err
		}
		return &l, nil
	case http.StatusNoContent:
		return nil, nil
	default:
		return nil, fmt.Errorf("doomed worker lease: unexpected status %s", resp.Status)
	}
}

func readResultJSON(t *testing.T, path string) *inject.Result {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := inject.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestServeWorkEndToEnd drives the full coordinator/worker system over
// localhost HTTP: one worker leases a shard and dies silently (its lease
// must expire and the shard be re-issued), two live workers drain the
// queue, the coordinator journals every shard and merges a result that is
// bit-identical to the single-process campaign — and a restarted
// coordinator completes instantly from the journal alone.
func TestServeWorkEndToEnd(t *testing.T) {
	cs := e2eSpec()

	// Reference: the same campaign, single process.
	ref, err := shard.Build(cs)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run.Campaign.Run(ref.Run.Result); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	journal := filepath.Join(dir, "journal.jsonl")
	outPath := filepath.Join(dir, "result.json")
	var serveOut bytes.Buffer
	url, serveErr := startServe(t, serveOpts{
		grid:     gridPtr(singleCampaignGrid(cs)),
		single:   true,
		shards:   5,
		journal:  journal,
		leaseTTL: 300 * time.Millisecond,
		linger:   time.Second,
		outPath:  outPath,
	}, &serveOut)

	// A doomed worker claims a shard and is never heard from again.
	doomed := leaseRaw(t, url, "doomed")
	if doomed.Spec.End <= doomed.Spec.Start {
		t.Fatalf("doomed lease covers nothing: %+v", doomed.Spec)
	}

	// Two real workers drain the campaign; the doomed shard re-issues to
	// one of them after the lease TTL.
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	var w1Out, w2Out bytes.Buffer
	workErr := make(chan error, 2)
	go func() { workErr <- work(ctx, workOpts{url: url, name: "w1", poll: 25 * time.Millisecond, out: &w1Out}) }()
	go func() { workErr <- work(ctx, workOpts{url: url, name: "w2", poll: 25 * time.Millisecond, out: &w2Out}) }()

	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serve: %v\n%s", err, serveOut.String())
		}
	case <-ctx.Done():
		t.Fatalf("campaign never completed; serve output:\n%s\nw1:\n%s\nw2:\n%s", serveOut.String(), w1Out.String(), w2Out.String())
	}
	for i := 0; i < 2; i++ {
		if err := <-workErr; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}

	got := readResultJSON(t, outPath)
	if err := shard.EquivalentResults(ref.Run.Result, got); err != nil {
		t.Fatalf("distributed result diverges from single-process: %v", err)
	}

	// The dead worker's lease must have been re-issued: its shard's
	// injections are present in the merged result even though "doomed"
	// never posted anything.
	if len(got.Injections) != len(ref.Run.Result.Injections) {
		t.Fatalf("merged %d injections, want %d", len(got.Injections), len(ref.Run.Result.Injections))
	}
	if !bytes.Contains(w1Out.Bytes(), []byte("campaign complete")) || !bytes.Contains(w2Out.Bytes(), []byte("campaign complete")) {
		t.Fatalf("workers did not observe campaign completion:\nw1:\n%s\nw2:\n%s", w1Out.String(), w2Out.String())
	}

	// Restart the coordinator on the same journal: every shard is already
	// recorded, so it must merge and exit without any worker.
	outPath2 := filepath.Join(dir, "result2.json")
	var serveOut2 bytes.Buffer
	_, serveErr2 := startServe(t, serveOpts{
		grid:     gridPtr(singleCampaignGrid(cs)),
		single:   true,
		shards:   5,
		journal:  journal,
		leaseTTL: 300 * time.Millisecond,
		outPath:  outPath2,
	}, &serveOut2)
	select {
	case err := <-serveErr2:
		if err != nil {
			t.Fatalf("journal-resumed serve: %v\n%s", err, serveOut2.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("journal-resumed serve never completed:\n%s", serveOut2.String())
	}
	if !bytes.Contains(serveOut2.Bytes(), []byte("journaled=5")) {
		t.Fatalf("resumed serve did not load the journal:\n%s", serveOut2.String())
	}
	got2 := readResultJSON(t, outPath2)
	if err := shard.EquivalentResults(ref.Run.Result, got2); err != nil {
		t.Fatalf("journal-resumed result diverges: %v", err)
	}
}

// sweepTestLETs keeps the e2e grids at two campaigns per benchmark.
var sweepTestLETs = []float64{1.0, 37.0}

// sweepTestGrid builds the 2-benchmark x 2-LET grid the sweep e2e tests
// drain, plus the experiment config it derives from.
func sweepTestGrid(t *testing.T, socs []int) (sweep.Grid, ssresf.ExperimentConfig) {
	t.Helper()
	ec := ssresf.DefaultExperimentConfig(true)
	grids := make([]sweep.Grid, len(socs))
	for i, soc := range socs {
		g, err := sweep.LETGrid(ec, soc, sweepTestLETs, "memcpy")
		if err != nil {
			t.Fatal(err)
		}
		grids[i] = g
	}
	return sweep.Concat("e2e-let-grid", grids...), ec
}

// inProcessLETReference renders the same grid through the classic
// in-process ssresf path — the byte-identity oracle.
func inProcessLETReference(t *testing.T, ec ssresf.ExperimentConfig, socs []int) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, soc := range socs {
		pts, err := ssresf.LETSweep(ec, soc, sweepTestLETs)
		if err != nil {
			t.Fatal(err)
		}
		ssresf.RenderLETSweep(&buf, soc, pts)
	}
	return buf.Bytes()
}

// TestServeSweepEndToEnd drives a whole experiment grid — two benchmarks
// x two LETs, four campaign fingerprints — through one coordinator and
// a small worker fleet: the journal already holds one shard from a
// previous coordinator incarnation (the "coordinator restart" leg), one
// worker leases a shard and dies silently (its shard must be re-issued),
// two live workers drain the rest of the grid from the shared lease
// pool, and the sweep-level aggregation must render byte-identically to
// the in-process ssresf drivers. A second coordinator restart with the
// complete journal must finish with no workers at all — and at no point
// may a journaled shard be re-simulated.
func TestServeSweepEndToEnd(t *testing.T) {
	socs := []int{1, 2}
	grid, ec := sweepTestGrid(t, socs)
	want := inProcessLETReference(t, ec, socs)

	dir := t.TempDir()
	journal := filepath.Join(dir, "sweep.jsonl")
	outPath := filepath.Join(dir, "grid.txt")
	outDir := filepath.Join(dir, "results")
	if err := os.Mkdir(outDir, 0o755); err != nil {
		t.Fatal(err)
	}

	// A previous coordinator incarnation journaled one shard of the first
	// campaign before crashing.
	firstCS := grid.Spec.Items[0].Campaign
	preBuilt, err := shard.Build(firstCS)
	if err != nil {
		t.Fatal(err)
	}
	preSpecs, err := shard.PlanAtMost(firstCS, 2, len(preBuilt.Jobs))
	if err != nil {
		t.Fatal(err)
	}
	prePartial, err := shard.ExecuteOn(preBuilt, preSpecs[0])
	if err != nil {
		t.Fatal(err)
	}
	store, err := runstore.Open(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Append(preBuilt.Fingerprint, prePartial); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	var serveOut bytes.Buffer
	url, serveErr := startServe(t, serveOpts{
		grid:     &grid,
		shards:   2,
		journal:  journal,
		leaseTTL: 600 * time.Millisecond,
		linger:   time.Second,
		outPath:  outPath,
		outDir:   outDir,
	}, &serveOut)

	// A doomed worker claims a shard and is never heard from again; with
	// no heartbeat its lease expires and the shard re-issues.
	doomed := leaseRaw(t, url, "doomed")
	if doomed.Spec.End <= doomed.Spec.Start {
		t.Fatalf("doomed lease covers nothing: %+v", doomed.Spec)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	var w1Out, w2Out bytes.Buffer
	workErr := make(chan error, 2)
	go func() { workErr <- work(ctx, workOpts{url: url, name: "w1", poll: 25 * time.Millisecond, out: &w1Out}) }()
	go func() { workErr <- work(ctx, workOpts{url: url, name: "w2", poll: 25 * time.Millisecond, out: &w2Out}) }()

	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("sweep serve: %v\n%s", err, serveOut.String())
		}
	case <-ctx.Done():
		t.Fatalf("sweep never completed; serve output:\n%s\nw1:\n%s\nw2:\n%s", serveOut.String(), w1Out.String(), w2Out.String())
	}
	for i := 0; i < 2; i++ {
		if err := <-workErr; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}

	// The restarted coordinator must have loaded the prior incarnation's
	// shard...
	if !bytes.Contains(serveOut.Bytes(), []byte("journaled=1")) {
		t.Fatalf("serve did not load the pre-crash journal:\n%s", serveOut.String())
	}
	// ...and no worker may have re-simulated it. The trailing space matters:
	// shard=1 must not match shard=10.
	journaledLine := fmt.Sprintf("campaign=%.12s shard=%d ", preBuilt.Fingerprint, prePartial.Index)
	if bytes.Contains(w1Out.Bytes(), []byte(journaledLine)) || bytes.Contains(w2Out.Bytes(), []byte(journaledLine)) {
		t.Fatalf("journaled shard re-simulated by a worker:\nw1:\n%s\nw2:\n%s", w1Out.String(), w2Out.String())
	}

	// Byte-identity of the sweep-level aggregation with the in-process
	// path.
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sweep output diverges from in-process reference:\n--- sweep ---\n%s\n--- in-process ---\n%s", got, want)
	}

	// Per-campaign merged results landed in -outdir, one per key.
	for _, it := range grid.Spec.Items {
		res := readResultJSON(t, filepath.Join(outDir, it.Key+".json"))
		if len(res.Injections) == 0 {
			t.Fatalf("campaign %q result empty", it.Key)
		}
	}

	// Full coordinator restart from the now-complete journal: every shard
	// of every campaign is recorded, so the sweep must finish with no
	// worker and render the identical bytes again.
	outPath2 := filepath.Join(dir, "grid2.txt")
	var serveOut2 bytes.Buffer
	_, serveErr2 := startServe(t, serveOpts{
		grid:     &grid,
		shards:   2,
		journal:  journal,
		leaseTTL: 600 * time.Millisecond,
		outPath:  outPath2,
	}, &serveOut2)
	select {
	case err := <-serveErr2:
		if err != nil {
			t.Fatalf("journal-resumed sweep: %v\n%s", err, serveOut2.String())
		}
	case <-time.After(3 * time.Minute):
		t.Fatalf("journal-resumed sweep never completed:\n%s", serveOut2.String())
	}
	got2, err := os.ReadFile(outPath2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, want) {
		t.Fatalf("journal-resumed sweep output diverges:\n%s", got2)
	}
}

// TestSweepSmokeByteIdentical is the `make sweep-smoke` gate: a tiny
// two-campaign sweep (SoC1 at two LETs) served through the coordinator
// and drained by one worker must render byte-identically to the
// in-process ssresf path. It also spot-checks that sweep progress is
// reported per campaign, never mixing fingerprints.
func TestSweepSmokeByteIdentical(t *testing.T) {
	socs := []int{1}
	grid, ec := sweepTestGrid(t, socs)
	want := inProcessLETReference(t, ec, socs)

	outPath := filepath.Join(t.TempDir(), "grid.txt")
	var serveOut bytes.Buffer
	url, serveErr := startServe(t, serveOpts{
		grid:     &grid,
		shards:   2,
		leaseTTL: time.Minute,
		linger:   time.Second,
		outPath:  outPath,
	}, &serveOut)

	// Progress must enumerate both campaigns with distinct fingerprints —
	// through the sweep resource API, which replaced the /v1/progress alias.
	stCtx, stCancel := context.WithTimeout(context.Background(), 30*time.Second)
	st, err := capi.NewClient(url).Sweep(stCtx, sfpOf(t, grid.Spec))
	stCancel()
	if err != nil {
		t.Fatalf("sweep status: %v", err)
	}
	if st.Progress.CampaignsTotal != 2 || len(st.Progress.Campaigns) != 2 {
		t.Fatalf("sweep progress %+v, want 2 campaigns", st.Progress)
	}
	if st.Progress.Campaigns[0].Fingerprint == st.Progress.Campaigns[1].Fingerprint {
		t.Fatal("sweep progress campaigns share a fingerprint")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	var wOut bytes.Buffer
	if err := work(ctx, workOpts{url: url, name: "w", poll: 25 * time.Millisecond, out: &wOut}); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("sweep serve: %v\n%s", err, serveOut.String())
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sweep-smoke output diverges from in-process path:\n--- sweep ---\n%s\n--- in-process ---\n%s", got, want)
	}
}

// TestSweepStatusEndpoint checks the coordinator's observability
// surface: GET /v1/sweeps/{fp} reports per-campaign shard progress, the
// campaign's true fingerprint, and — once shards complete — the sweep's
// cost block.
func TestSweepStatusEndpoint(t *testing.T) {
	cs := e2eSpec()
	grid := singleCampaignGrid(cs)
	var out bytes.Buffer
	url, serveErr := startServe(t, serveOpts{
		grid:     gridPtr(grid),
		single:   true,
		shards:   2,
		leaseTTL: time.Minute,
		linger:   time.Second,
	}, &out)
	client := capi.NewClient(url)
	sweepFP := sfpOf(t, grid.Spec)

	// Campaigns open once built; poll until the (only) campaign's shard
	// plan is visible.
	deadline := time.Now().Add(30 * time.Second)
	var st capi.SweepStatus
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		got, err := client.Sweep(ctx, sweepFP)
		cancel()
		if err == nil {
			st = got
			if len(st.Progress.Campaigns) == 1 && st.Progress.Campaigns[0].Shards.Total == 2 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("status never showed the opened campaign (last: %+v, err %v)", st, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	cp := st.Progress.Campaigns[0]
	if cp.Shards.Pending+cp.Shards.Leased+cp.Shards.Done != 2 || cp.Done {
		t.Fatalf("fresh campaign progress %+v", cp)
	}
	if cp.Fingerprint != cfpOf(t, cs) {
		t.Fatalf("status reports fingerprint %.12s, want %.12s", cp.Fingerprint, cfpOf(t, cs))
	}
	if st.Progress.CampaignsTotal != 1 {
		t.Fatalf("singleton sweep progress %+v", st.Progress)
	}
	if st.Cost != nil {
		t.Fatalf("cost block present before any shard completed: %+v", st.Cost)
	}

	// Drain it with one worker so serve exits cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wOut bytes.Buffer
	if err := work(ctx, workOpts{url: url, name: "w", poll: 25 * time.Millisecond, out: &wOut}); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// quickLETParams is the declarative description the submit tests POST:
// a 2-campaign LET grid on one benchmark, quick config — the same grid
// sweepTestGrid builds per benchmark, so fingerprints line up with the
// in-process reference.
func quickLETParams(soc int) sweep.GridParams {
	return sweep.GridParams{Kind: "let", SoC: soc, LETs: sweepTestLETs, Workload: "memcpy", Quick: true}
}

// fleetFingerprints collects a status' campaign fingerprint set.
func fleetFingerprints(st capi.SweepStatus) map[string]bool {
	out := map[string]bool{}
	for _, c := range st.Progress.Campaigns {
		out[c.Fingerprint] = true
	}
	return out
}

// TestSubmitTwoSweepsEndToEnd is the resource-API acceptance gate: a
// coordinator started with no sweep flags at all serves two grids
// submitted concurrently over POST /v1/sweeps; a worker fleet drains
// both through the shared lease surface; each sweep's progress never
// mixes the other's campaigns; and each sweep's fetched results are
// byte-identical to the same grid's local in-process run. Submission
// idempotency and the pending-results refusal ride along.
func TestSubmitTwoSweepsEndToEnd(t *testing.T) {
	ec := ssresf.DefaultExperimentConfig(true)
	wantA := inProcessLETReference(t, ec, []int{1})
	wantB := inProcessLETReference(t, ec, []int{2})

	var serveOut bytes.Buffer
	url, serveErr := startServe(t, serveOpts{
		shards:   2,
		leaseTTL: time.Minute,
		linger:   20 * time.Second,
	}, &serveOut)

	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Minute)
	defer cancel()
	client := capi.NewClient(url)

	replyA, err := client.Submit(ctx, quickLETParams(1))
	if err != nil {
		t.Fatalf("submit A: %v", err)
	}
	if !replyA.Created || replyA.Campaigns != 2 {
		t.Fatalf("submit A reply %+v, want created with 2 campaigns", replyA)
	}
	replyB, err := client.Submit(ctx, quickLETParams(2))
	if err != nil {
		t.Fatalf("submit B: %v", err)
	}
	if replyA.Fingerprint == replyB.Fingerprint {
		t.Fatal("distinct grids share a sweep fingerprint")
	}

	// Idempotency: resubmitting a live grid returns the same resource.
	again, err := client.Submit(ctx, quickLETParams(1))
	if err != nil {
		t.Fatalf("resubmit A: %v", err)
	}
	if again.Created || again.Fingerprint != replyA.Fingerprint {
		t.Fatalf("resubmit reply %+v, want existing resource %.12s", again, replyA.Fingerprint)
	}

	// Results before completion must refuse with the pending code.
	if _, err := client.Results(ctx, replyA.Fingerprint); err == nil {
		t.Fatal("results of a running sweep fetched")
	} else if ce, ok := err.(*capi.Error); !ok || ce.Code != capi.CodePending {
		t.Fatalf("premature results error %v, want code %q", err, capi.CodePending)
	}

	// The listing holds both resources.
	list, err := client.Sweeps(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("listing holds %d sweeps, want 2", len(list))
	}

	var w1Out, w2Out bytes.Buffer
	workErr := make(chan error, 2)
	go func() { workErr <- work(ctx, workOpts{url: url, name: "w1", poll: 25 * time.Millisecond, out: &w1Out}) }()
	go func() { workErr <- work(ctx, workOpts{url: url, name: "w2", poll: 25 * time.Millisecond, out: &w2Out}) }()

	stA, err := client.WaitSweep(ctx, replyA.Fingerprint, nil)
	if err != nil {
		t.Fatalf("waiting on A: %v\n%s", err, serveOut.String())
	}
	stB, err := client.WaitSweep(ctx, replyB.Fingerprint, nil)
	if err != nil {
		t.Fatalf("waiting on B: %v\n%s", err, serveOut.String())
	}
	if stA.State != capi.StateDone || stB.State != capi.StateDone {
		t.Fatalf("terminal states A=%s B=%s, want done/done", stA.State, stB.State)
	}

	// Per-sweep progress never mixes campaigns across sweeps.
	fpsA, fpsB := fleetFingerprints(stA), fleetFingerprints(stB)
	if len(fpsA) != 2 || len(fpsB) != 2 {
		t.Fatalf("progress enumerates %d/%d campaigns, want 2/2", len(fpsA), len(fpsB))
	}
	for fp := range fpsA {
		if fpsB[fp] {
			t.Fatalf("campaign %.12s appears in both sweeps' progress", fp)
		}
	}
	if stA.Progress.CampaignsDone != 2 || stB.Progress.CampaignsDone != 2 {
		t.Fatalf("done counts A=%d B=%d, want 2/2", stA.Progress.CampaignsDone, stB.Progress.CampaignsDone)
	}

	// Byte-identity of both fetched results with the in-process path.
	gotA, err := client.Results(ctx, replyA.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := client.Results(ctx, replyB.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotA, wantA) {
		t.Fatalf("sweep A results diverge from in-process reference:\n--- fetched ---\n%s\n--- reference ---\n%s", gotA, wantA)
	}
	if !bytes.Equal(gotB, wantB) {
		t.Fatalf("sweep B results diverge from in-process reference:\n--- fetched ---\n%s\n--- reference ---\n%s", gotB, wantB)
	}

	// With every sweep terminal the coordinator winds down by itself and
	// the workers observe the drained signal.
	for i := 0; i < 2; i++ {
		if err := <-workErr; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v\n%s", err, serveOut.String())
	}
}

// TestCancelMidFlightDeterminism pins DELETE /v1/sweeps/{fp} semantics:
// cancelling one of two live sweeps stops its leasing immediately, its
// one leased shard may still finish and deliver (journal stays valid),
// the surviving sweep drains to results byte-identical to its local
// run — and resubmitting the cancelled grid resumes from the journaled
// shard instead of re-simulating it.
func TestCancelMidFlightDeterminism(t *testing.T) {
	ec := ssresf.DefaultExperimentConfig(true)
	wantA := inProcessLETReference(t, ec, []int{1})
	wantB := inProcessLETReference(t, ec, []int{2})

	dir := t.TempDir()
	journal := filepath.Join(dir, "fleet.jsonl")
	var serveOut bytes.Buffer
	url, serveErr := startServe(t, serveOpts{
		shards:   2,
		journal:  journal,
		leaseTTL: time.Minute,
		linger:   20 * time.Second,
	}, &serveOut)

	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Minute)
	defer cancel()
	client := capi.NewClient(url)

	// Sweep A is alone on the coordinator when the slow worker leases, so
	// the held shard is certainly A's.
	replyA, err := client.Submit(ctx, quickLETParams(1))
	if err != nil {
		t.Fatal(err)
	}
	held := leaseRaw(t, url, "slow-worker")
	stA, err := client.Sweep(ctx, replyA.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if !fleetFingerprints(stA)[held.Spec.Fingerprint] {
		t.Fatalf("first lease %.12s is not a campaign of sweep A", held.Spec.Fingerprint)
	}
	replyB, err := client.Submit(ctx, quickLETParams(2))
	if err != nil {
		t.Fatal(err)
	}

	// Cancel A while that shard is leased out.
	stCancel, err := client.Cancel(ctx, replyA.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if stCancel.State != capi.StateCancelled {
		t.Fatalf("cancel reply state %q", stCancel.State)
	}
	if _, err := client.Results(ctx, replyA.Fingerprint); err == nil || !capi.IsRefusal(err) {
		t.Fatalf("cancelled sweep's results fetch: %v, want a cancelled refusal", err)
	}

	// The fleet drains B; none of A's shards may be handed out anymore.
	var wOut bytes.Buffer
	workDone := make(chan error, 1)
	go func() { workDone <- work(ctx, workOpts{url: url, name: "w1", poll: 25 * time.Millisecond, out: &wOut}) }()

	// The slow worker finishes its cancelled shard mid-flight: the
	// completion is still accepted and journaled.
	b, err := shard.Build(held.Spec.Campaign)
	if err != nil {
		t.Fatal(err)
	}
	p, err := shard.ExecuteOn(b, held.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Complete(ctx, held.Spec.Fingerprint, held.ID, held.Epoch, p); err != nil {
		t.Fatalf("completion of a cancelled sweep's leased shard refused: %v", err)
	}

	stB, err := client.WaitSweep(ctx, replyB.Fingerprint, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stB.State != capi.StateDone {
		t.Fatalf("sweep B ended %q: %s", stB.State, stB.Error)
	}
	gotB, err := client.Results(ctx, replyB.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotB, wantB) {
		t.Fatalf("surviving sweep's results diverge from its local run:\n--- fetched ---\n%s\n--- reference ---\n%s", gotB, wantB)
	}
	// With A cancelled and B done the coordinator reads as drained, so
	// the worker observes 410 and exits — having executed nothing of A.
	if err := <-workDone; err != nil {
		t.Fatalf("worker: %v", err)
	}
	for fp := range fleetFingerprints(stA) {
		if bytes.Contains(wOut.Bytes(), []byte(fmt.Sprintf("%.12s", fp))) {
			t.Fatalf("worker executed a shard of the cancelled sweep:\n%s", wOut.String())
		}
	}

	// Resubmitting the cancelled grid (within the linger window) revives
	// the coordinator, replaces the cancelled run and resumes from the
	// journal: the mid-flight completion above must not re-simulate.
	replyA2, err := client.Submit(ctx, quickLETParams(1))
	if err != nil {
		t.Fatal(err)
	}
	if !replyA2.Created || replyA2.Fingerprint != replyA.Fingerprint {
		t.Fatalf("resubmit after cancel: %+v, want a fresh run of %.12s", replyA2, replyA.Fingerprint)
	}
	w2Out := &safeBuf{}
	workDone2 := make(chan error, 1)
	go func() {
		workDone2 <- work(ctx, workOpts{url: url, name: "w2", poll: 25 * time.Millisecond, out: w2Out})
	}()
	stA2, err := client.WaitSweep(ctx, replyA2.Fingerprint, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stA2.State != capi.StateDone {
		t.Fatalf("resubmitted sweep ended %q: %s", stA2.State, stA2.Error)
	}
	gotA, err := client.Results(ctx, replyA2.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotA, wantA) {
		t.Fatalf("resubmitted sweep's results diverge:\n--- fetched ---\n%s\n--- reference ---\n%s", gotA, wantA)
	}
	if err := <-workDone2; err != nil {
		t.Fatalf("worker 2: %v", err)
	}
	journaledLine := fmt.Sprintf("campaign=%.12s shard=%d ", held.Spec.Fingerprint, held.Spec.Index)
	if bytes.Contains([]byte(w2Out.String()), []byte(journaledLine)) {
		t.Fatalf("journaled shard re-simulated after resubmission:\n%s", w2Out.String())
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v\n%s", err, serveOut.String())
	}
}

// TestAPISubmitSmoke is the `make sweep-smoke` API leg: an empty
// coordinator (started with no sweep flags), one submitted -quick
// 2-campaign grid, one worker — and the fetched results must be
// byte-identical to the same grid run through the socfault local sweep
// path (sweep.RunLocal + Grid.Render, exactly what `socfault -sweep`
// executes).
func TestAPISubmitSmoke(t *testing.T) {
	params := quickLETParams(1)
	grid, err := params.Grid()
	if err != nil {
		t.Fatal(err)
	}
	localResults, err := sweep.RunLocal(grid.Spec, sweep.LocalOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := grid.Render(&want, localResults); err != nil {
		t.Fatal(err)
	}

	var serveOut bytes.Buffer
	url, serveErr := startServe(t, serveOpts{
		shards:   2,
		leaseTTL: time.Minute,
		linger:   10 * time.Second,
	}, &serveOut)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	client := capi.NewClient(url)
	reply, err := client.Submit(ctx, params)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	var wOut bytes.Buffer
	workDone := make(chan error, 1)
	go func() { workDone <- work(ctx, workOpts{url: url, name: "w", poll: 25 * time.Millisecond, out: &wOut}) }()

	st, err := client.WaitSweep(ctx, reply.Fingerprint, nil)
	if err != nil {
		t.Fatalf("watch: %v\n%s", err, serveOut.String())
	}
	if st.State != capi.StateDone {
		t.Fatalf("sweep ended %q: %s", st.State, st.Error)
	}
	got, err := client.Results(ctx, reply.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("fetched results diverge from the local -sweep run:\n--- fetched ---\n%s\n--- local ---\n%s", got, want.String())
	}
	if err := <-workDone; err != nil {
		t.Fatalf("worker: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v\n%s", err, serveOut.String())
	}
}

// TestPurgeSweepDropsResourceAndJournal covers journal compaction for
// long-lived coordinators: a sweep that completes gets its journal
// records marked terminal (so the next Open compacts them away), and
// DELETE /v1/sweeps/{fp}?purge=1 goes further — the resource leaves the
// registry (GETs 404) and the records leave the disk before the reply.
func TestPurgeSweepDropsResourceAndJournal(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "grid.jsonl")
	params := quickLETParams(1)
	reg := obs.NewRegistry()
	var serveOut bytes.Buffer
	url, serveErr := startServe(t, serveOpts{
		shards:   2,
		journal:  journal,
		leaseTTL: time.Minute,
		linger:   10 * time.Second,
		obsReg:   reg,
	}, &serveOut)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	client := capi.NewClient(url)
	reply, err := client.Submit(ctx, params)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var wOut bytes.Buffer
	workDone := make(chan error, 1)
	go func() { workDone <- work(ctx, workOpts{url: url, name: "w", poll: 25 * time.Millisecond, out: &wOut}) }()
	st, err := client.WaitSweep(ctx, reply.Fingerprint, nil)
	if err != nil {
		t.Fatalf("watch: %v\n%s", err, serveOut.String())
	}
	if st.State != capi.StateDone {
		t.Fatalf("sweep ended %q: %s", st.State, st.Error)
	}

	// Completion marked the sweep's records terminal: the file still holds
	// them physically, but no load will ever resume them.
	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("journal is empty before purge — nothing was ever recorded")
	}
	loaded, _, err := runstore.LoadAll(journal)
	if err != nil {
		t.Fatal(err)
	}
	for fp := range fleetFingerprints(st) {
		if len(loaded[fp]) != 0 {
			t.Fatalf("campaign %.12s still loads %d journaled shards after its sweep completed", fp, len(loaded[fp]))
		}
	}

	// Before the purge, the sweep's registered gauges are on the scrape,
	// labeled with its fp12.
	fp := fp12(reply.Fingerprint)
	pre := scrapeProm(t, url+"/metrics")
	if _, ok := pre.Value("sweep_campaigns_total", "sweep", fp); !ok {
		t.Fatalf("per-sweep gauges missing before purge:\n%v", pre.Series)
	}

	stPurge, err := client.Purge(ctx, reply.Fingerprint)
	if err != nil {
		t.Fatalf("purge: %v", err)
	}
	if stPurge.State != capi.StateDone {
		t.Fatalf("purge reported state %q, want done", stPurge.State)
	}
	if _, err := client.Sweep(ctx, reply.Fingerprint); err == nil {
		t.Fatal("purged sweep still answers GET /v1/sweeps/{fp}")
	} else if apiErr, ok := err.(*capi.Error); !ok || apiErr.Code != capi.CodeNotFound {
		t.Fatalf("purged sweep GET returned %v, want a %s API error", err, capi.CodeNotFound)
	}
	raw, err = os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 0 {
		t.Fatalf("journal still holds %d bytes after purge:\n%s", len(raw), raw)
	}

	// The purge also unregistered the sweep's gauges: a long-lived
	// coordinator's label cardinality stays bounded by its live sweeps,
	// not by everything it ever served.
	post := scrapeProm(t, url+"/metrics")
	for key, s := range post.Series {
		if s.Labels["sweep"] == fp {
			t.Errorf("series %s still on the scrape after purge", key)
		}
	}

	if err := <-workDone; err != nil {
		t.Fatalf("worker: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v\n%s", err, serveOut.String())
	}
}

// TestTerminalMarkerProtectsSharedCampaigns: a completed API sweep must
// not mark terminal (nor purge) the records of campaigns it shares with
// the exempt self-submitted sweep — whose journal is its recovery
// artifact — while still dropping the campaigns only it served.
func TestTerminalMarkerProtectsSharedCampaigns(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "j.jsonl")
	store, err := runstore.Open(journal)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	g := newRegistry(serveOpts{shards: 1, leaseTTL: time.Minute}, 0, store, map[string]map[int]*shard.Partial{}, &syncWriter{w: io.Discard})

	specFor := func(seed uint64) shard.CampaignSpec {
		cs := e2eSpec()
		cs.Seed = seed
		return cs
	}
	csA, csB, csC := specFor(1), specFor(2), specFor(3)
	mkRun := func(name string, specs ...shard.CampaignSpec) *sweepRun {
		var items []sweep.Item
		for i, cs := range specs {
			items = append(items, sweep.Item{Key: fmt.Sprintf("%s-%d", name, i), Campaign: cs})
		}
		var cfps []string
		for _, cs := range specs {
			cfps = append(cfps, cfpOf(t, cs))
		}
		return &sweepRun{grid: sweep.Grid{Spec: sweep.SweepSpec{Name: name, Items: items}}, cfps: cfps, state: capi.StateDone}
	}
	initial := mkRun("initial", csA, csB) // self-submitted batch job
	api := mkRun("api", csB, csC)         // later API sweep sharing csB
	g.initial = initial
	g.byCamp[cfpOf(t, csA)] = initial
	g.byCamp[cfpOf(t, csB)] = api // api took the shared campaign over
	g.byCamp[cfpOf(t, csC)] = api
	for _, cs := range []shard.CampaignSpec{csA, csB, csC} {
		if err := store.Append(cfpOf(t, cs), stubSpecPartial()); err != nil {
			t.Fatal(err)
		}
	}

	g.markJournalTerminal(api)
	loaded, _, err := runstore.LoadAll(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded[cfpOf(t, csA)]) != 1 || len(loaded[cfpOf(t, csB)]) != 1 {
		t.Fatalf("marker killed records shared with the initial sweep: %v", loaded)
	}
	if len(loaded[cfpOf(t, csC)]) != 0 {
		t.Fatal("the API-only campaign's records survived its terminal marker")
	}
}

// cfpOf computes a campaign fingerprint, failing the test on error.
func cfpOf(t *testing.T, cs shard.CampaignSpec) string {
	t.Helper()
	fp, err := cs.Fingerprint()
	if err != nil {
		t.Fatalf("campaign fingerprint: %v", err)
	}
	return fp
}

// sfpOf computes a sweep fingerprint, failing the test on error.
func sfpOf(t *testing.T, ss sweep.SweepSpec) string {
	t.Helper()
	fp, err := ss.Fingerprint()
	if err != nil {
		t.Fatalf("sweep fingerprint: %v", err)
	}
	return fp
}

// stubSpecPartial is a minimal journalable shard record.
func stubSpecPartial() *shard.Partial {
	return &shard.Partial{Index: 0, Start: 0, End: 1, Injections: []inject.Injection{{CellID: 1, Path: "stub"}}}
}
