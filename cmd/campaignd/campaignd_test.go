package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/inject"
	"repro/internal/shard"
)

// e2eSpec is the small SoC1 campaign the end-to-end test distributes.
func e2eSpec() shard.CampaignSpec {
	cs := shard.SpecFromOptions(1, "memcpy", inject.DefaultOptions())
	cs.SampleFrac = 0.05
	cs.MinPer = 2
	cs.Seed = 7
	return cs
}

// startServe launches the coordinator on an ephemeral localhost port and
// returns its base URL plus the channel its exit error lands on.
func startServe(t *testing.T, opts serveOpts, stdout io.Writer) (string, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- serve(opts, ln, stdout) }()
	return "http://" + ln.Addr().String(), errCh
}

// leaseRaw performs one raw lease request, retrying until the coordinator
// answers — the e2e test's stand-in for a worker that dies mid-shard.
func leaseRaw(t *testing.T, url, worker string) *shard.Lease {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		body, _ := json.Marshal(leaseRequest{Worker: worker})
		resp, err := http.Post(url+"/v1/lease", "application/json", bytes.NewReader(body))
		if err == nil {
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				var l shard.Lease
				if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
					t.Fatal(err)
				}
				return &l
			}
			t.Fatalf("doomed worker lease: unexpected status %s", resp.Status)
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never answered a lease: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func readResultJSON(t *testing.T, path string) *inject.Result {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := inject.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestServeWorkEndToEnd drives the full coordinator/worker system over
// localhost HTTP: one worker leases a shard and dies silently (its lease
// must expire and the shard be re-issued), two live workers drain the
// queue, the coordinator journals every shard and merges a result that is
// bit-identical to the single-process campaign — and a restarted
// coordinator completes instantly from the journal alone.
func TestServeWorkEndToEnd(t *testing.T) {
	cs := e2eSpec()

	// Reference: the same campaign, single process.
	ref, err := shard.Build(cs)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run.Campaign.Run(ref.Run.Result); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	journal := filepath.Join(dir, "journal.jsonl")
	outPath := filepath.Join(dir, "result.json")
	var serveOut bytes.Buffer
	url, serveErr := startServe(t, serveOpts{
		spec:     cs,
		shards:   5,
		journal:  journal,
		leaseTTL: 300 * time.Millisecond,
		linger:   time.Second,
		outPath:  outPath,
	}, &serveOut)

	// A doomed worker claims a shard and is never heard from again.
	doomed := leaseRaw(t, url, "doomed")
	if doomed.Spec.End <= doomed.Spec.Start {
		t.Fatalf("doomed lease covers nothing: %+v", doomed.Spec)
	}

	// Two real workers drain the campaign; the doomed shard re-issues to
	// one of them after the lease TTL.
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	var w1Out, w2Out bytes.Buffer
	workErr := make(chan error, 2)
	go func() { workErr <- work(ctx, workOpts{url: url, name: "w1", poll: 25 * time.Millisecond, out: &w1Out}) }()
	go func() { workErr <- work(ctx, workOpts{url: url, name: "w2", poll: 25 * time.Millisecond, out: &w2Out}) }()

	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serve: %v\n%s", err, serveOut.String())
		}
	case <-ctx.Done():
		t.Fatalf("campaign never completed; serve output:\n%s\nw1:\n%s\nw2:\n%s", serveOut.String(), w1Out.String(), w2Out.String())
	}
	for i := 0; i < 2; i++ {
		if err := <-workErr; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}

	got := readResultJSON(t, outPath)
	if err := shard.EquivalentResults(ref.Run.Result, got); err != nil {
		t.Fatalf("distributed result diverges from single-process: %v", err)
	}

	// The dead worker's lease must have been re-issued: its shard's
	// injections are present in the merged result even though "doomed"
	// never posted anything.
	if len(got.Injections) != len(ref.Run.Result.Injections) {
		t.Fatalf("merged %d injections, want %d", len(got.Injections), len(ref.Run.Result.Injections))
	}
	if !bytes.Contains(w1Out.Bytes(), []byte("campaign complete")) || !bytes.Contains(w2Out.Bytes(), []byte("campaign complete")) {
		t.Fatalf("workers did not observe campaign completion:\nw1:\n%s\nw2:\n%s", w1Out.String(), w2Out.String())
	}

	// Restart the coordinator on the same journal: every shard is already
	// recorded, so it must merge and exit without any worker.
	outPath2 := filepath.Join(dir, "result2.json")
	var serveOut2 bytes.Buffer
	_, serveErr2 := startServe(t, serveOpts{
		spec:     cs,
		shards:   5,
		journal:  journal,
		leaseTTL: 300 * time.Millisecond,
		outPath:  outPath2,
	}, &serveOut2)
	select {
	case err := <-serveErr2:
		if err != nil {
			t.Fatalf("journal-resumed serve: %v\n%s", err, serveOut2.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("journal-resumed serve never completed:\n%s", serveOut2.String())
	}
	if !bytes.Contains(serveOut2.Bytes(), []byte("5 journaled")) {
		t.Fatalf("resumed serve did not load the journal:\n%s", serveOut2.String())
	}
	got2 := readResultJSON(t, outPath2)
	if err := shard.EquivalentResults(ref.Run.Result, got2); err != nil {
		t.Fatalf("journal-resumed result diverges: %v", err)
	}
}

// TestProgressEndpoint checks the coordinator's observability surface.
func TestProgressEndpoint(t *testing.T) {
	cs := e2eSpec()
	var out bytes.Buffer
	url, serveErr := startServe(t, serveOpts{
		spec:     cs,
		shards:   2,
		leaseTTL: time.Minute,
		linger:   time.Second,
	}, &out)

	deadline := time.Now().Add(30 * time.Second)
	var pr progressReply
	for {
		resp, err := http.Get(url + "/v1/progress")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&pr)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("progress endpoint unreachable: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if pr.Progress.Total != 2 || pr.Progress.Pending != 2 || pr.Done {
		t.Fatalf("fresh campaign progress %+v", pr)
	}
	if pr.Fingerprint != cs.Fingerprint() {
		t.Fatalf("progress reports fingerprint %.12s, want %.12s", pr.Fingerprint, cs.Fingerprint())
	}

	// Drain it with one worker so serve exits cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wOut bytes.Buffer
	if err := work(ctx, workOpts{url: url, name: "w", poll: 25 * time.Millisecond, out: &wOut}); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
}
