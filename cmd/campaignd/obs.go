package main

import (
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"

	"repro/internal/obs"
)

// newLogger builds the structured logger both modes narrate through:
// slog text lines without timestamps, so test assertions and diffs of two
// runs stay stable. Every record is one Write, so a syncWriter underneath
// keeps concurrent sweeps' lines whole.
func newLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{}
			}
			return a
		},
	}))
}

// fp12 truncates a fingerprint to the 12-hex prefix used in log lines,
// metric labels and trace args.
func fp12(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

// startDebugServer serves GET /metrics plus net/http/pprof on a side
// address — the -debug-addr surface, deliberately separate from the
// coordinator API so profiling a busy fleet never competes with lease
// traffic (and so `campaignd work`, which serves no API, has a scrape
// target too). It reports the bound address (resolving a :0 port) and a
// stop that closes the listener.
func startDebugServer(addr string, reg *obs.Registry) (boundAddr string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}
