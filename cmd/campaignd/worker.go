package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/shard"
)

// workOpts is the parsed configuration of one work loop.
type workOpts struct {
	url  string
	name string
	poll time.Duration
	out  io.Writer
}

func runWork(args []string) error {
	fs := flag.NewFlagSet("campaignd work", flag.ContinueOnError)
	url := fs.String("url", "http://127.0.0.1:8372", "coordinator base URL")
	name := fs.String("name", defaultWorkerName(), "worker identity reported to the coordinator")
	poll := fs.Duration("poll", 2*time.Second, "idle polling interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := positiveDuration("poll", *poll); err != nil {
		return err
	}
	return work(context.Background(), workOpts{url: *url, name: *name, poll: *poll, out: os.Stdout})
}

// maxConsecutiveFailures bounds how long a worker survives an unreachable
// coordinator: roughly failures x poll interval of retrying.
const maxConsecutiveFailures = 30

// work is the lease/execute/post loop over a whole sweep. It builds each
// distinct campaign once (golden run + checkpoints + plan) and reuses it
// across all of that campaign's shards — the coordinator's affinity
// scheduling keeps handing this worker the campaign it has already
// built — and memoizes finished partials, so a requeued shard it
// already computed is answered from cache. While a shard executes, a
// heartbeat goroutine renews the lease at a third of its TTL, so a
// shard outrunning the lease is never re-issued to idle workers. The
// loop exits cleanly when the coordinator reports the sweep complete,
// the context is cancelled, or the coordinator stays unreachable for
// maxConsecutiveFailures polls.
func work(ctx context.Context, opts workOpts) error {
	exec := shard.NewExecutor()
	client := &http.Client{Timeout: 30 * time.Second}
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, status, err := requestLease(ctx, client, opts)
		if err != nil {
			failures++
			if failures >= maxConsecutiveFailures {
				return fmt.Errorf("coordinator unreachable after %d attempts: %v", failures, err)
			}
			if !sleepCtx(ctx, opts.poll) {
				return ctx.Err()
			}
			continue
		}
		failures = 0
		switch status {
		case http.StatusGone:
			fmt.Fprintf(opts.out, "%s: campaign complete\n", opts.name)
			return nil
		case http.StatusNoContent:
			if !sleepCtx(ctx, opts.poll) {
				return ctx.Err()
			}
			continue
		}
		hitsBefore := exec.CacheHits()
		stopRenew := startRenewal(ctx, client, opts, lease)
		p, err := exec.Execute(lease.Spec)
		stopRenew()
		if err != nil {
			// A shard this process cannot execute (bad spec, build failure)
			// is fatal for the worker; the lease expires and another worker
			// picks the shard up.
			return fmt.Errorf("executing shard %d: %v", lease.Spec.Index, err)
		}
		cached := ""
		if exec.CacheHits() > hitsBefore {
			cached = " (from cache)"
		}
		if err := postCompleteRetry(ctx, client, opts, lease, p); err != nil {
			// The coordinator refused the result — the shard completed
			// elsewhere while we computed it. Deterministic execution makes
			// the other copy identical, so dropping ours is harmless.
			fmt.Fprintf(opts.out, "%s: shard %d of %.12s dropped: %v\n", opts.name, lease.Spec.Index, lease.Spec.Fingerprint, err)
			continue
		}
		fmt.Fprintf(opts.out, "%s: shard %d of %.12s done [%d,%d): %d injections%s\n",
			opts.name, lease.Spec.Index, lease.Spec.Fingerprint, lease.Spec.Start, lease.Spec.End, len(p.Injections), cached)
	}
}

// startRenewal heartbeats the lease at a third of its TTL while the
// shard executes; the returned stop function ends the heartbeat —
// aborting any in-flight renew request, so a finished shard's result is
// never delayed behind a hanging heartbeat — and waits it out. Renewal
// is best-effort: a refusal (the lease already expired, or the shard
// completed from a journal) just stops the heartbeat — the late
// completion path still delivers the result — and transport errors are
// retried at the next tick.
func startRenewal(ctx context.Context, client *http.Client, opts workOpts, lease *shard.Lease) (stop func()) {
	if lease.TTL <= 0 {
		return func() {}
	}
	interval := lease.TTL / 3
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	rctx, cancel := context.WithCancel(ctx)
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-rctx.Done():
				return
			case <-ticker.C:
				if refused, err := postRenew(rctx, client, opts, lease); err != nil && refused {
					return
				}
			}
		}
	}()
	return func() {
		cancel()
		<-finished
	}
}

// postRenew sends one heartbeat. refused reports a coordinator judgment
// (stop heartbeating) as opposed to a transport failure (retry next
// tick).
func postRenew(ctx context.Context, client *http.Client, opts workOpts, lease *shard.Lease) (refused bool, err error) {
	body, err := json.Marshal(renewRequest{LeaseID: lease.ID, Fingerprint: lease.Spec.Fingerprint})
	if err != nil {
		return true, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, opts.url+"/v1/renew", bytes.NewReader(body))
	if err != nil {
		return true, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return resp.StatusCode < 500, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return false, nil
}

// requestLease asks the coordinator for a shard. A nil error with a nil
// lease carries the non-200 status (204 idle, 410 done).
func requestLease(ctx context.Context, client *http.Client, opts workOpts) (*shard.Lease, int, error) {
	body, err := json.Marshal(leaseRequest{Worker: opts.name})
	if err != nil {
		return nil, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, opts.url+"/v1/lease", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var l shard.Lease
		if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
			return nil, 0, fmt.Errorf("decoding lease: %v", err)
		}
		return &l, http.StatusOK, nil
	case http.StatusNoContent, http.StatusGone:
		return nil, resp.StatusCode, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, 0, fmt.Errorf("lease refused: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
}

// completeAttempts bounds postCompleteRetry: a computed shard is worth
// several poll intervals of retrying, but not an unbounded wait.
const completeAttempts = 5

// postCompleteRetry delivers a shard result, retrying transport errors —
// a simulated shard may represent minutes of work, and a network blip at
// exactly the wrong moment must not throw it away. A coordinator refusal
// (non-200 status) is never retried: the result was delivered and
// judged, retrying cannot change the verdict.
func postCompleteRetry(ctx context.Context, client *http.Client, opts workOpts, lease *shard.Lease, p *shard.Partial) error {
	var err error
	for attempt := 0; attempt < completeAttempts; attempt++ {
		if attempt > 0 && !sleepCtx(ctx, opts.poll) {
			return ctx.Err()
		}
		var permanent bool
		permanent, err = postComplete(ctx, client, opts, lease, p)
		if err == nil || permanent {
			return err
		}
	}
	return fmt.Errorf("undeliverable after %d attempts: %v", completeAttempts, err)
}

// postComplete delivers a shard result for a held lease, routed by the
// shard's campaign fingerprint. permanent distinguishes a coordinator
// refusal (do not retry) from a transport failure (retryable).
func postComplete(ctx context.Context, client *http.Client, opts workOpts, lease *shard.Lease, p *shard.Partial) (permanent bool, err error) {
	body, err := json.Marshal(completeRequest{LeaseID: lease.ID, Fingerprint: lease.Spec.Fingerprint, Partial: p})
	if err != nil {
		return true, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, opts.url+"/v1/complete", bytes.NewReader(body))
	if err != nil {
		return true, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		// Only a 4xx is a judgment on the result (stale lease, duplicate,
		// malformed); a 5xx is the coordinator side tripping over itself —
		// a proxy restart, overload — and worth retrying like a transport
		// error.
		return resp.StatusCode < 500, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return true, nil
}

// sleepCtx sleeps for d unless the context ends first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}
