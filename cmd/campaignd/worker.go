package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/capi"
	"repro/internal/inject"
	"repro/internal/lake"
	"repro/internal/obs"
	"repro/internal/shard"
)

// workOpts is the parsed configuration of one work loop.
type workOpts struct {
	url        string
	name       string
	poll       time.Duration
	maxOffline time.Duration // 0: fall back to the attempt-count budget
	push       time.Duration // metrics-push cadence to the coordinator; 0 = no pushing
	lake       bool          // use the coordinator's artifact lake (fetch golden builds, share partials)
	client     *capi.Client  // nil: a default client for url (tests inject chaos transports)
	out        io.Writer

	// Observability; same contract as serveOpts — instrumentation never
	// changes what a shard computes.
	obsReg    *obs.Registry // metrics registry; nil = work creates its own
	tracer    *obs.Tracer   // span journal; nil = created iff tracePath is set
	debugAddr string        // pprof + /metrics server; "" = off
	tracePath string        // Chrome trace_event JSON written on exit; "" = off

	// Test hooks. tamper mutates a finished partial before it is posted —
	// the faulty-worker stand-in the audit path exists to catch (mutate
	// then re-Stamp: the checksum is self-consistent, only the verdict is
	// wrong). failShard, when it returns an error for a spec, stands in
	// for an execution that crashes — the poison-work path.
	tamper    func(p *shard.Partial)
	failShard func(sp shard.Spec) error
}

func runWork(args []string) error {
	fs := flag.NewFlagSet("campaignd work", flag.ContinueOnError)
	url := fs.String("url", "http://127.0.0.1:8372", "coordinator base URL")
	name := fs.String("name", defaultWorkerName(), "worker identity reported to the coordinator")
	poll := fs.Duration("poll", 2*time.Second, "base idle polling interval; idle polls back off exponentially (jittered, capped at 20x) and reset on the next lease")
	maxOffline := fs.Duration("max-offline", 0, "give up (non-zero exit) once the coordinator has been continuously unreachable this long; 0 bounds by attempt count instead")
	push := fs.Duration("push", 5*time.Second, "push this worker's metrics to the coordinator's federation endpoint (GET /metrics/fleet) at this interval; 0 disables")
	useLake := fs.Bool("lake", true, "use the coordinator's artifact lake when it serves one: fetch golden builds other processes already ran, publish this worker's, and share finished shard partials; any lake error falls back to local computation")
	debugAddr := fs.String("debug-addr", "", "serve GET /metrics and net/http/pprof on this address (workers serve no API, so this is their only scrape target)")
	tracePath := fs.String("trace", "", "write the shard-lifecycle span journal as Chrome trace_event JSON to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := positiveDuration("poll", *poll); err != nil {
		return err
	}
	if *maxOffline < 0 {
		return fmt.Errorf("-max-offline must not be negative, got %v", *maxOffline)
	}
	if *push < 0 {
		return fmt.Errorf("-push must not be negative, got %v", *push)
	}
	return work(context.Background(), workOpts{
		url: *url, name: *name, poll: *poll, maxOffline: *maxOffline, push: *push, lake: *useLake,
		out: os.Stdout, debugAddr: *debugAddr, tracePath: *tracePath,
	})
}

// maxConsecutiveFailures bounds how long a worker survives an
// unreachable coordinator: that many exhausted client retry budgets,
// each separated by the capped idle backoff.
const maxConsecutiveFailures = 30

// idleBackoffFactor caps the jittered idle backoff at this multiple of
// the base -poll interval. A fleet's idle polls would otherwise
// synchronize — every worker knocked idle by the same drained queue or
// coordinator restart polls on the same fixed beat — into a thundering
// herd; the jittered, growing interval spreads them out while keeping
// the first re-poll prompt.
const idleBackoffFactor = 20

// work is the lease/execute/post loop over every sweep a coordinator
// serves. It builds each distinct campaign once (golden run +
// checkpoints + plan) and reuses it across all of that campaign's
// shards — the coordinator's affinity scheduling keeps handing this
// worker the campaign it has already built — and memoizes finished
// partials, so a requeued shard it already computed is answered from
// cache. While a shard executes, a heartbeat goroutine renews the lease
// at a third of its TTL, so a shard outrunning the lease is never
// re-issued. The loop exits cleanly when the coordinator reports itself
// drained (every sweep terminal) or the context is cancelled, and with
// an error when the coordinator stays unreachable past the -max-offline
// window (or, without one, for maxConsecutiveFailures rounds).
func work(ctx context.Context, opts workOpts) error {
	logger := newLogger(opts.out).With("worker", opts.name)
	reg := opts.obsReg
	if reg == nil {
		reg = obs.NewRegistry()
	}
	tracer := opts.tracer
	if tracer == nil && opts.tracePath != "" {
		tracer = obs.NewTracer()
	}
	if opts.tracePath != "" {
		defer func() {
			if err := tracer.WriteFile(opts.tracePath); err != nil {
				logger.Warn("trace write failed", "path", opts.tracePath, "err", err)
			}
		}()
	}
	if opts.debugAddr != "" {
		dbgAddr, stopDebug, err := startDebugServer(opts.debugAddr, reg)
		if err != nil {
			return err
		}
		defer stopDebug()
		logger.Info("debug server listening", "addr", dbgAddr)
	}

	exec := shard.NewExecutor()
	exec.SetMetrics(shard.NewMetrics(reg), tracer)
	// Worker-local tuning only touches Options fields excluded from the
	// campaign fingerprint: the metrics sink changes nothing a shard
	// computes, so instrumented and bare workers merge bit-identically.
	im := inject.NewMetrics(reg)
	im.Tracer = tracer
	exec.SetTune(func(o *inject.Options) { o.Metrics = im })

	client := opts.client
	if client == nil {
		client = capi.NewClient(opts.url)
	}
	if client.Obs == nil {
		client.Obs = reg
	}
	if opts.lake {
		// Lake-backed backends: claim-or-fetch golden builds instead of
		// always simulating them, and share finished partials fleet-wide.
		// The worker's own lake_* counters land on reg, so -push federates
		// them into the coordinator's /metrics/fleet view. A coordinator
		// without a lake answers 404, which the backends treat as a miss —
		// the executor then behaves exactly as without a lake.
		lm := lake.NewMetrics(reg)
		exec.SetBuilder(lake.NewClientBuilder(client, opts.name, lm))
		exec.SetPartialCache(lake.NewClientPartials(client, lm))
	}
	// Metrics federation: push the registry's exposition to the
	// coordinator on a fixed cadence (the coordinator derives the
	// liveness window from the declared interval), plus one final
	// best-effort push on exit so the fleet view carries this worker's
	// last word. Pushes are fire-and-forget: a failed push is simply
	// superseded by the next one, and an unreachable coordinator is
	// already the lease loop's problem.
	if opts.push > 0 {
		pushCtx, stopPush := context.WithCancel(ctx)
		pushDone := make(chan struct{})
		go func() {
			defer close(pushDone)
			ticker := time.NewTicker(opts.push)
			defer ticker.Stop()
			for {
				select {
				case <-pushCtx.Done():
					return
				case <-ticker.C:
					if err := client.PushMetrics(pushCtx, opts.name, reg.Expose(), opts.push); err != nil && pushCtx.Err() == nil {
						logger.Debug("metrics push failed", "err", err)
					}
				}
			}
		}()
		defer func() {
			stopPush()
			<-pushDone
			finalCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			// The exit push declares no cadence: this worker will never
			// push again, so the fleet's default staleness window applies
			// rather than 3x a cadence that no longer exists.
			client.PushMetrics(finalCtx, opts.name, reg.Expose(), 0)
		}()
	}

	idle := &capi.Backoff{Base: opts.poll, Cap: idleBackoffFactor * opts.poll}
	failures := 0
	var offlineSince time.Time // first failure of the current unreachable streak
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, outcome, err := client.Lease(ctx, opts.name)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			var ce *capi.Error
			if errors.As(err, &ce) && ce.Code == capi.CodeQuarantined {
				// The coordinator no longer trusts this worker's results;
				// polling on would be refused forever. Exit distinctly so an
				// operator (or supervisor) sees a health verdict, not a
				// connectivity one.
				logger.Error("worker quarantined by coordinator; exiting", "err", err)
				return fmt.Errorf("quarantined by coordinator: %v", err)
			}
			failures++
			now := time.Now()
			if offlineSince.IsZero() {
				offlineSince = now
			}
			// -max-offline bounds the streak by wall clock — the operator's
			// "how long may a worker box sit useless" knob; without it the
			// attempt-count budget applies.
			if opts.maxOffline > 0 {
				if down := now.Sub(offlineSince); down >= opts.maxOffline {
					logger.Error("coordinator unreachable; giving up", "down", down.Round(time.Millisecond), "limit", opts.maxOffline)
					return fmt.Errorf("coordinator unreachable for %v (max-offline %v, %d attempts): %v", down.Round(time.Millisecond), opts.maxOffline, failures, err)
				}
			} else if failures >= maxConsecutiveFailures {
				return fmt.Errorf("coordinator unreachable after %d attempts: %v", failures, err)
			}
			if !sleepCtx(ctx, idle.Next()) {
				return ctx.Err()
			}
			continue
		}
		failures = 0
		offlineSince = time.Time{}
		switch outcome {
		case capi.LeaseDrained:
			logger.Info("campaign complete")
			return nil
		case capi.LeaseIdle:
			if !sleepCtx(ctx, idle.Next()) {
				return ctx.Err()
			}
			continue
		}
		idle.Reset()
		hitsBefore := exec.CacheHits()
		stopRenew := startRenewal(ctx, client, opts, lease)
		var p *shard.Partial
		if opts.failShard != nil {
			if ferr := opts.failShard(lease.Spec); ferr != nil {
				err = &shard.ExecPanicError{Msg: ferr.Error()}
			}
		}
		if err == nil {
			p, err = exec.ExecuteFor(lease.Spec, lease.Sweep)
		}
		stopRenew()
		if err != nil {
			var pe *shard.ExecPanicError
			if errors.As(err, &pe) {
				// The shard crashed its executor — the executor's recover
				// converted the panic into this typed error, so the worker
				// process survives. Report the failure so the coordinator
				// releases the lease now (no TTL wait) and counts the attempt
				// toward the shard's quarantine bound, then poll on.
				logger.Error("shard execution panicked", "campaign", fp12(lease.Spec.Fingerprint),
					"shard", lease.Spec.Index, "err", err)
				if ferr := client.Fail(ctx, lease.Spec.Fingerprint, lease.ID, opts.name, err.Error()); ferr != nil && ctx.Err() == nil {
					logger.Warn("failure report dropped", "err", ferr)
				}
				continue
			}
			// A shard this process cannot execute (bad spec, build failure)
			// is fatal for the worker; the lease expires and another worker
			// picks the shard up.
			return fmt.Errorf("executing shard %d: %v", lease.Spec.Index, err)
		}
		if opts.tamper != nil {
			opts.tamper(p)
		}
		cached := exec.CacheHits() > hitsBefore
		if err := client.Complete(ctx, lease.Spec.Fingerprint, lease.ID, lease.Epoch, p); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// Either the coordinator refused the result (the shard completed
			// elsewhere — deterministic execution makes the other copy
			// identical, so dropping ours is harmless), or it stayed
			// unreachable through the client's retries. Both drop and poll
			// on: an outage is ridden out by the lease loop's failure
			// budget, the executor's result cache answers a re-issued copy
			// of this shard instantly, and dying here would throw away the
			// worker's warm golden runs over a transient blip.
			logger.Warn("shard dropped", "campaign", fp12(lease.Spec.Fingerprint), "shard", lease.Spec.Index, "err", err)
			continue
		}
		logger.Info("shard done", "campaign", fp12(lease.Spec.Fingerprint), "shard", lease.Spec.Index,
			"range", fmt.Sprintf("[%d,%d)", lease.Spec.Start, lease.Spec.End),
			"injections", len(p.Injections), "cached", cached)
	}
}

// startRenewal heartbeats the lease at a third of its TTL while the
// shard executes; the returned stop function ends the heartbeat —
// aborting any in-flight renew request, so a finished shard's result is
// never delayed behind a hanging heartbeat — and waits it out. Renewal
// is best-effort: a refusal (the lease already expired, or the shard
// completed from a journal) just stops the heartbeat — the late
// completion path still delivers the result — and transport errors are
// retried at the next tick.
func startRenewal(ctx context.Context, client *capi.Client, opts workOpts, lease *shard.Lease) (stop func()) {
	if lease.TTL <= 0 {
		return func() {}
	}
	interval := lease.TTL / 3
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	rctx, cancel := context.WithCancel(ctx)
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-rctx.Done():
				return
			case <-ticker.C:
				if _, err := client.Renew(rctx, lease.Spec.Fingerprint, lease.ID); err != nil && capi.IsRefusal(err) {
					return
				}
			}
		}
	}()
	return func() {
		cancel()
		<-finished
	}
}

// sleepCtx sleeps for d unless the context ends first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}
