package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/shard"
)

// workOpts is the parsed configuration of one work loop.
type workOpts struct {
	url  string
	name string
	poll time.Duration
	out  io.Writer
}

func runWork(args []string) error {
	fs := flag.NewFlagSet("campaignd work", flag.ContinueOnError)
	url := fs.String("url", "http://127.0.0.1:8372", "coordinator base URL")
	name := fs.String("name", defaultWorkerName(), "worker identity reported to the coordinator")
	poll := fs.Duration("poll", 2*time.Second, "idle polling interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := positiveDuration("poll", *poll); err != nil {
		return err
	}
	return work(context.Background(), workOpts{url: *url, name: *name, poll: *poll, out: os.Stdout})
}

// maxConsecutiveFailures bounds how long a worker survives an unreachable
// coordinator: roughly failures x poll interval of retrying.
const maxConsecutiveFailures = 30

// work is the lease/execute/post loop. It builds each distinct campaign
// once (golden run + checkpoints + plan) and reuses it across all of that
// campaign's shards; it exits cleanly when the coordinator reports the
// campaign complete, the context is cancelled, or the coordinator stays
// unreachable for maxConsecutiveFailures polls.
func work(ctx context.Context, opts workOpts) error {
	exec := shard.NewExecutor()
	client := &http.Client{Timeout: 30 * time.Second}
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, status, err := requestLease(ctx, client, opts)
		if err != nil {
			failures++
			if failures >= maxConsecutiveFailures {
				return fmt.Errorf("coordinator unreachable after %d attempts: %v", failures, err)
			}
			if !sleepCtx(ctx, opts.poll) {
				return ctx.Err()
			}
			continue
		}
		failures = 0
		switch status {
		case http.StatusGone:
			fmt.Fprintf(opts.out, "%s: campaign complete\n", opts.name)
			return nil
		case http.StatusNoContent:
			if !sleepCtx(ctx, opts.poll) {
				return ctx.Err()
			}
			continue
		}
		p, err := exec.Execute(lease.Spec)
		if err != nil {
			// A shard this process cannot execute (bad spec, build failure)
			// is fatal for the worker; the lease expires and another worker
			// picks the shard up.
			return fmt.Errorf("executing shard %d: %v", lease.Spec.Index, err)
		}
		if err := postCompleteRetry(ctx, client, opts, lease.ID, p); err != nil {
			// The coordinator refused the result — the shard completed
			// elsewhere while we computed it. Deterministic execution makes
			// the other copy identical, so dropping ours is harmless.
			fmt.Fprintf(opts.out, "%s: shard %d dropped: %v\n", opts.name, lease.Spec.Index, err)
			continue
		}
		fmt.Fprintf(opts.out, "%s: shard %d done [%d,%d): %d injections\n",
			opts.name, lease.Spec.Index, lease.Spec.Start, lease.Spec.End, len(p.Injections))
	}
}

// requestLease asks the coordinator for a shard. A nil error with a nil
// lease carries the non-200 status (204 idle, 410 done).
func requestLease(ctx context.Context, client *http.Client, opts workOpts) (*shard.Lease, int, error) {
	body, err := json.Marshal(leaseRequest{Worker: opts.name})
	if err != nil {
		return nil, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, opts.url+"/v1/lease", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var l shard.Lease
		if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
			return nil, 0, fmt.Errorf("decoding lease: %v", err)
		}
		return &l, http.StatusOK, nil
	case http.StatusNoContent, http.StatusGone:
		return nil, resp.StatusCode, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, 0, fmt.Errorf("lease refused: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
}

// completeAttempts bounds postCompleteRetry: a computed shard is worth
// several poll intervals of retrying, but not an unbounded wait.
const completeAttempts = 5

// postCompleteRetry delivers a shard result, retrying transport errors —
// a simulated shard may represent minutes of work, and a network blip at
// exactly the wrong moment must not throw it away. A coordinator refusal
// (non-200 status) is never retried: the result was delivered and
// judged, retrying cannot change the verdict.
func postCompleteRetry(ctx context.Context, client *http.Client, opts workOpts, leaseID string, p *shard.Partial) error {
	var err error
	for attempt := 0; attempt < completeAttempts; attempt++ {
		if attempt > 0 && !sleepCtx(ctx, opts.poll) {
			return ctx.Err()
		}
		var permanent bool
		permanent, err = postComplete(ctx, client, opts, leaseID, p)
		if err == nil || permanent {
			return err
		}
	}
	return fmt.Errorf("undeliverable after %d attempts: %v", completeAttempts, err)
}

// postComplete delivers a shard result for a held lease. permanent
// distinguishes a coordinator refusal (do not retry) from a transport
// failure (retryable).
func postComplete(ctx context.Context, client *http.Client, opts workOpts, leaseID string, p *shard.Partial) (permanent bool, err error) {
	body, err := json.Marshal(completeRequest{LeaseID: leaseID, Partial: p})
	if err != nil {
		return true, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, opts.url+"/v1/complete", bytes.NewReader(body))
	if err != nil {
		return true, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		// Only a 4xx is a judgment on the result (stale lease, duplicate,
		// malformed); a 5xx is the coordinator side tripping over itself —
		// a proxy restart, overload — and worth retrying like a transport
		// error.
		return resp.StatusCode < 500, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return true, nil
}

// sleepCtx sleeps for d unless the context ends first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}
