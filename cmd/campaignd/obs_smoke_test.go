package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/capi"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/ssresf"
)

// scrapeProm fetches a /metrics endpoint and runs it through the strict
// exposition parser, so every scrape in these tests doubles as a
// standards check.
func scrapeProm(t *testing.T, url string) *obs.Scrape {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("scraping %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scraping %s: %s\n%s", url, resp.Status, body)
	}
	sc, err := obs.ParseText(string(body))
	if err != nil {
		t.Fatalf("exposition from %s rejected by the strict parser: %v\n%s", url, err, body)
	}
	return sc
}

// TestObsSmoke is the `make obs-smoke` gate: a quick sweep drained end to
// end with metrics, tracing and the pprof debug server all enabled. The
// coordinator's /metrics must parse under the strict checker both
// mid-flight and at drain, the lease/fenced/warm-start series must be
// present from the first scrape and monotone between scrapes, the debug
// server must answer /metrics and /debug/pprof/, the exported trace must
// validate as Chrome trace_event JSON — and the rendered sweep output
// must be byte-identical to the uninstrumented in-process reference.
func TestObsSmoke(t *testing.T) {
	ec := ssresf.DefaultExperimentConfig(true)
	want := inProcessLETReference(t, ec, []int{1})
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Minute)
	defer cancel()

	reg := obs.NewRegistry()
	tracer := obs.NewTracer()
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	serveOut := &safeBuf{}
	url, serveErr := startServe(t, serveOpts{
		shards:    2,
		leaseTTL:  2 * time.Second,
		linger:    10 * time.Second,
		obsReg:    reg,
		tracer:    tracer,
		tracePath: tracePath,
	}, serveOut)

	client := capi.NewClient(url)
	reply, err := client.Submit(ctx, quickLETParams(1))
	if err != nil {
		t.Fatal(err)
	}

	// Mid-flight scrape: eager registration means the lifecycle series
	// are present (if zero) before anything has completed.
	mid := scrapeProm(t, url+"/metrics")
	for _, name := range []string{"shard_leases_total", "shard_fenced_total", "shard_speculated_total"} {
		if _, ok := mid.Value(name); !ok {
			t.Fatalf("mid-flight scrape missing %s:\n%v", name, mid.Series)
		}
	}

	wOut := &safeBuf{}
	workDone := make(chan error, 1)
	go func() {
		workDone <- work(ctx, workOpts{
			url: url, name: "ow1", poll: 25 * time.Millisecond, out: wOut,
			obsReg: reg, tracer: tracer,
		})
	}()

	if _, err := client.WaitSweep(ctx, reply.Fingerprint, nil); err != nil {
		t.Fatal(err)
	}
	got, err := client.Results(ctx, reply.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	// Determinism gate: metrics + tracing enabled, output byte-identical
	// to the uninstrumented single-process reference.
	if !bytes.Equal(got, want) {
		t.Fatalf("instrumented sweep output diverges from the bare reference:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Drain scrape: work happened, counters moved, and every counter
	// present mid-flight is monotone.
	drain := scrapeProm(t, url+"/metrics")
	if v, ok := drain.Value("shard_leases_total"); !ok || v < 1 {
		t.Fatalf("shard_leases_total = %v, %v after a drained sweep; want >= 1", v, ok)
	}
	for _, name := range []string{"inject_warm_starts_total", "inject_evals_total"} {
		if _, ok := drain.Value(name); !ok {
			t.Fatalf("drain scrape missing worker series %s", name)
		}
	}
	for key, s := range mid.Series {
		if !isCounterSeries(s.Name) {
			continue
		}
		after, ok := drain.Series[key]
		if !ok {
			t.Fatalf("series %s present mid-flight but gone at drain", key)
		}
		if after.Value < s.Value {
			t.Fatalf("counter %s went backwards: %v -> %v", key, s.Value, after.Value)
		}
	}

	// The pprof side server exposes the same registry plus the profiler.
	dbgAddr, stopDebug, err := startDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer stopDebug()
	scrapeProm(t, "http://"+dbgAddr+"/metrics")
	resp, err := http.Get("http://" + dbgAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline endpoint answered %s", resp.Status)
	}

	if err := <-workDone; err != nil {
		t.Fatalf("worker: %v\n%s", err, wOut.String())
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v\n%s", err, serveOut.String())
	}

	// The coordinator wrote the span journal on exit; it must be valid
	// trace_event JSON carrying the lifecycle edges of the run.
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	events, err := obs.ValidateTrace(raw)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	spans := 0
	for _, ev := range events {
		seen[ev.Name] = true
		if ev.Ph == "X" {
			spans++
		}
	}
	for _, name := range []string{"submit", "lease", "complete", "execute"} {
		if !seen[name] {
			t.Fatalf("trace has no %q event; events: %v", name, keysOf(seen))
		}
	}
	if spans == 0 {
		t.Fatal("trace contains no complete (X) spans")
	}
}

// isCounterSeries reports whether a sample name belongs to a counter
// family under this repo's naming convention (every counter ends in
// _total; histograms render as _bucket/_sum/_count).
func isCounterSeries(name string) bool {
	return len(name) > len("_total") && name[len(name)-len("_total"):] == "_total"
}

func keysOf(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestSpeculationObserved pins the straggler path's instrumentation: a
// raw lease sits on one shard of a single-campaign grid while a live
// worker drains the rest; with a tiny speculate factor the coordinator
// must re-issue the straggler's shard as a backup lease, the fleet must
// still merge the exact single-process result, and the scrape must show
// shard_speculated_total >= 1.
func TestSpeculationObserved(t *testing.T) {
	cs := e2eSpec()
	ref, err := shard.Build(cs)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run.Campaign.Run(ref.Run.Result); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	outPath := filepath.Join(dir, "result.json")
	tracePath := filepath.Join(dir, "trace.json")
	reg := obs.NewRegistry()
	serveOut := &safeBuf{}
	url, serveErr := startServe(t, serveOpts{
		grid:   gridPtr(singleCampaignGrid(cs)),
		single: true,
		shards: 5,
		// Long shard leases: only speculation — never expiry — may free
		// the straggler's shard. The tiny factor fires a backup as soon
		// as one completed shard establishes a duration baseline.
		leaseTTL:   time.Minute,
		linger:     time.Second,
		specFactor: 0.01,
		outPath:    outPath,
		obsReg:     reg,
		tracePath:  tracePath,
	}, serveOut)

	straggler := leaseRaw(t, url, "straggler")
	if straggler.Speculative {
		t.Fatalf("first lease of the grid came back speculative: %+v", straggler)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	wOut := &safeBuf{}
	workDone := make(chan error, 1)
	go func() {
		workDone <- work(ctx, workOpts{url: url, name: "sw1", poll: 25 * time.Millisecond, out: wOut, obsReg: reg})
	}()

	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serve: %v\n%s", err, serveOut.String())
		}
	case <-ctx.Done():
		t.Fatalf("campaign never completed; serve:\n%s\nworker:\n%s", serveOut.String(), wOut.String())
	}
	if err := <-workDone; err != nil {
		t.Fatalf("worker: %v\n%s", err, wOut.String())
	}

	got := readResultJSON(t, outPath)
	if err := shard.EquivalentResults(ref.Run.Result, got); err != nil {
		t.Fatalf("speculated run diverges from single-process: %v", err)
	}

	sc, err := obs.ParseText(reg.Expose())
	if err != nil {
		t.Fatalf("exposition rejected by the strict parser: %v", err)
	}
	if v, ok := sc.Value("shard_speculated_total"); !ok || v < 1 {
		t.Fatalf("shard_speculated_total = %v, %v; want >= 1 (straggler shard %d never re-issued?)\nserve:\n%s",
			v, ok, straggler.Spec.Index, serveOut.String())
	}
	if v, ok := sc.Value("shard_leases_total"); !ok || v < 5 {
		t.Fatalf("shard_leases_total = %v, %v; want >= 5 (4 first-issue + straggler + backup)", v, ok)
	}
	// The worker side of the same story: the backup executed against the
	// worker's warm golden, so the run shows up in its cache/lease
	// narration too.
	if !bytes.Contains([]byte(wOut.String()), []byte(fmt.Sprintf("shard=%d", straggler.Spec.Index))) {
		t.Fatalf("live worker never completed the straggler's shard %d:\n%s", straggler.Spec.Index, wOut.String())
	}

	// The coordinator exported its span journal on exit; the re-issue
	// must appear there as a "speculated" instant in a valid trace.
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	events, err := obs.ValidateTrace(raw)
	if err != nil {
		t.Fatal(err)
	}
	speculated := false
	for _, ev := range events {
		if ev.Name == "speculated" {
			speculated = true
			break
		}
	}
	if !speculated {
		t.Fatalf("trace has no speculated instant across %d events", len(events))
	}
}
