package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/capi"
	"repro/internal/lake"
	"repro/internal/obs"
)

// goldenSpanCount counts "golden" (campaign build) spans in a tracer's
// journal — the fleet-wide built-exactly-once assertion rests on a lake
// fetch emitting none.
func goldenSpanCount(t *testing.T, tr *obs.Tracer) int {
	t.Helper()
	raw, err := tr.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ValidateTrace(raw)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, ev := range evs {
		if ev.Name == "golden" {
			n++
		}
	}
	return n
}

// counterValue reads one exposition series (full name + label set, e.g.
// `lake_hits_total{kind="golden"}`) off a registry; absent series read 0.
func counterValue(t *testing.T, reg *obs.Registry, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(reg.Expose(), "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parsing series %s value %q: %v", series, rest, err)
			}
			return v
		}
	}
	return 0
}

// TestLakeGoldenSharedOnce is the fleet-wide golden-build sharing gate:
// one coordinator with an artifact lake, two lake-enabled workers, a
// 2-campaign LET grid. The coordinator builds each campaign's golden
// artifact exactly once (publishing it before any shard is leased), so
// across the whole fleet exactly len(campaigns) "golden" spans exist —
// the workers fetch instead of simulating, their lake hit counters
// prove it, and the rendered grid is byte-identical to the in-process
// reference the no-lake path also matches.
func TestLakeGoldenSharedOnce(t *testing.T) {
	socs := []int{1}
	grid, ec := sweepTestGrid(t, socs)
	want := inProcessLETReference(t, ec, socs)
	campaigns := len(grid.Spec.Items)

	dir := t.TempDir()
	outPath := filepath.Join(dir, "grid.txt")
	coordTr := obs.NewTracer()
	var serveOut bytes.Buffer
	url, serveErr := startServe(t, serveOpts{
		grid:     &grid,
		shards:   2,
		lakeDir:  filepath.Join(dir, "lake"),
		leaseTTL: time.Minute,
		linger:   time.Second,
		outPath:  outPath,
		tracer:   coordTr,
	}, &serveOut)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	regs := []*obs.Registry{obs.NewRegistry(), obs.NewRegistry()}
	trs := []*obs.Tracer{obs.NewTracer(), obs.NewTracer()}
	outs := []*bytes.Buffer{{}, {}}
	workErr := make(chan error, 2)
	for i, name := range []string{"w1", "w2"} {
		go func() {
			workErr <- work(ctx, workOpts{
				url: url, name: name, poll: 25 * time.Millisecond, lake: true,
				obsReg: regs[i], tracer: trs[i], out: outs[i],
			})
		}()
	}

	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serve: %v\n%s", err, serveOut.String())
		}
	case <-ctx.Done():
		t.Fatalf("sweep never completed; serve output:\n%s\nw1:\n%s\nw2:\n%s",
			serveOut.String(), outs[0].String(), outs[1].String())
	}
	for i := 0; i < 2; i++ {
		if err := <-workErr; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}

	// Built exactly once fleet-wide: the coordinator's builds are the
	// only golden spans anywhere; every worker adoption was a lake fetch.
	if n := goldenSpanCount(t, coordTr); n != campaigns {
		t.Fatalf("coordinator emitted %d golden spans, want %d (one per campaign)", n, campaigns)
	}
	for i, tr := range trs {
		if n := goldenSpanCount(t, tr); n != 0 {
			t.Fatalf("worker %d emitted %d golden spans, want 0 (fetch-only):\n%s", i+1, n, outs[i].String())
		}
	}
	hits := counterValue(t, regs[0], `lake_hits_total{kind="golden"}`) +
		counterValue(t, regs[1], `lake_hits_total{kind="golden"}`)
	if hits < float64(campaigns) {
		t.Fatalf("workers recorded %v golden lake hits, want >= %d", hits, campaigns)
	}

	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("lake-enabled sweep output diverges from in-process path:\n--- lake ---\n%s\n--- in-process ---\n%s", got, want)
	}
}

// TestLakeCrossSweepReuse is the cross-sweep memoization gate: a sweep
// drained once through a lake leaves every finished partial behind as a
// durable cache object, so a second coordinator resubmitting the same
// grid — same lake directory, fresh journal state, and NO workers at
// all — must complete entirely from the lake (seeding every shard at
// Open) and render byte-identical output. Zero golden spans on the
// second coordinator proves even the golden runs were adopted, not
// re-simulated.
func TestLakeCrossSweepReuse(t *testing.T) {
	socs := []int{1}
	grid, ec := sweepTestGrid(t, socs)
	want := inProcessLETReference(t, ec, socs)

	dir := t.TempDir()
	lakeDir := filepath.Join(dir, "lake")

	// Leg 1: drain the sweep once, populating the lake.
	out1 := filepath.Join(dir, "grid1.txt")
	var serveOut1 bytes.Buffer
	url, serveErr1 := startServe(t, serveOpts{
		grid:     &grid,
		shards:   2,
		lakeDir:  lakeDir,
		leaseTTL: time.Minute,
		linger:   time.Second,
		outPath:  out1,
	}, &serveOut1)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	var wOut bytes.Buffer
	if err := work(ctx, workOpts{url: url, name: "w", poll: 25 * time.Millisecond, lake: true, out: &wOut}); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if err := <-serveErr1; err != nil {
		t.Fatalf("first serve: %v\n%s", err, serveOut1.String())
	}

	// Leg 2: same lake, fresh coordinator, no journal, no workers. Any
	// shard the lake fails to answer would wait forever on a worker that
	// never comes — completion inside the timeout IS the zero
	// re-simulation assertion.
	out2 := filepath.Join(dir, "grid2.txt")
	reg2 := obs.NewRegistry()
	tr2 := obs.NewTracer()
	var serveOut2 bytes.Buffer
	_, serveErr2 := startServe(t, serveOpts{
		grid:     &grid,
		shards:   2,
		lakeDir:  lakeDir,
		leaseTTL: time.Minute,
		linger:   time.Second,
		outPath:  out2,
		obsReg:   reg2,
		tracer:   tr2,
	}, &serveOut2)
	select {
	case err := <-serveErr2:
		if err != nil {
			t.Fatalf("lake-resumed serve: %v\n%s", err, serveOut2.String())
		}
	case <-time.After(2 * time.Minute):
		t.Fatalf("lake-resumed serve never completed without workers:\n%s", serveOut2.String())
	}

	if n := goldenSpanCount(t, tr2); n != 0 {
		t.Fatalf("lake-resumed coordinator emitted %d golden spans, want 0 (goldens adopted from lake)", n)
	}
	if hits := counterValue(t, reg2, `lake_hits_total{kind="partial"}`); hits < 1 {
		t.Fatalf("lake-resumed coordinator recorded %v partial lake hits, want >= 1\n%s", hits, serveOut2.String())
	}

	got1, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, want) {
		t.Fatalf("first sweep output diverges from in-process path:\n--- sweep ---\n%s\n--- in-process ---\n%s", got1, want)
	}
	if !bytes.Equal(got2, want) {
		t.Fatalf("lake-resumed sweep output diverges:\n--- resumed ---\n%s\n--- in-process ---\n%s", got2, want)
	}
}

// TestLakeChaosMidSweep kills the lake partway through a sweep: a
// pre-opened store is chaos-failed (every operation answers 503) the
// moment the first shard completes, and the sweep must still drain to
// byte-identical output — the lake accelerates the fleet but is never a
// correctness dependency.
func TestLakeChaosMidSweep(t *testing.T) {
	socs := []int{1}
	grid, ec := sweepTestGrid(t, socs)
	want := inProcessLETReference(t, ec, socs)

	dir := t.TempDir()
	st, err := lake.Open(filepath.Join(dir, "lake"), 0)
	if err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "grid.txt")
	var serveOut bytes.Buffer
	url, serveErr := startServe(t, serveOpts{
		grid:     &grid,
		shards:   2,
		lake:     st,
		leaseTTL: time.Minute,
		linger:   time.Second,
		outPath:  outPath,
	}, &serveOut)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	var w1Out, w2Out bytes.Buffer
	workErr := make(chan error, 2)
	go func() {
		workErr <- work(ctx, workOpts{url: url, name: "w1", poll: 25 * time.Millisecond, lake: true, out: &w1Out})
	}()

	// Fail the lake as soon as the sweep shows real progress (first shard
	// done), then add a second worker that must cope with a dead lake
	// from its very first build.
	client := capi.NewClient(url)
	deadline := time.Now().Add(time.Minute)
	for {
		sctx, scancel := context.WithTimeout(ctx, 5*time.Second)
		status, err := client.Sweep(sctx, sfpOf(t, grid.Spec))
		scancel()
		if err == nil {
			done := 0
			for _, cp := range status.Progress.Campaigns {
				done += cp.Shards.Done
			}
			if done > 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never completed a first shard:\n%s\nw1:\n%s", serveOut.String(), w1Out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	st.Fail(true)
	go func() {
		workErr <- work(ctx, workOpts{url: url, name: "w2", poll: 25 * time.Millisecond, lake: true, out: &w2Out})
	}()

	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serve: %v\n%s", err, serveOut.String())
		}
	case <-ctx.Done():
		t.Fatalf("sweep never completed after lake failure:\n%s\nw1:\n%s\nw2:\n%s",
			serveOut.String(), w1Out.String(), w2Out.String())
	}
	for i := 0; i < 2; i++ {
		if err := <-workErr; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}

	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("chaos-lake sweep output diverges from in-process path:\n--- sweep ---\n%s\n--- in-process ---\n%s", got, want)
	}
}
