package main

// Fleet federation and live watch (DESIGN.md "Fleet federation & live
// watch"): workers push their metrics expositions to the coordinator,
// which re-exposes the merged, worker-labeled view on GET /metrics/fleet;
// clients follow a sweep live over GET /v1/sweeps/{fp}?watch=1, an SSE
// stream of the pool's event log with Last-Event-ID resume.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/capi"
)

// maxPushBytes bounds one worker's pushed exposition. A worker registry
// is tens of kilobytes; 4 MiB is generous headroom before the limit is
// protecting the coordinator from a misdirected upload.
const maxPushBytes = 4 << 20

// handlePushMetrics ingests one worker's metrics exposition
// (POST /v1/workers/{name}/metrics). The body is the worker registry's
// Prometheus text exposition; ?interval= declares the push cadence the
// liveness window derives from. A push that fails the strict parser (or
// tries to smuggle a worker label / fleet_ series) is rejected with 400
// and the worker's previous snapshot kept.
func (g *registry) handlePushMetrics(w http.ResponseWriter, r *http.Request) {
	if g.fleet == nil {
		capi.WriteError(w, http.StatusNotFound, capi.CodeNotFound, "metrics federation is not enabled")
		return
	}
	name := r.PathValue("name")
	var interval time.Duration
	if s := r.URL.Query().Get("interval"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d < 0 {
			capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest, "bad interval %q", s)
			return
		}
		interval = d
	}
	buf, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPushBytes))
	if err != nil {
		capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest, "reading push: %v", err)
		return
	}
	if err := g.fleet.Push(name, string(buf), interval); err != nil {
		capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// watchSweep streams a sweep's event log as Server-Sent Events until the
// sweep is terminal, the client goes away, or the server shuts down.
// Each message is `id: <seq>` + `event: sweep` + one JSON sweep.Event;
// a Last-Event-ID request header resumes the replay after that sequence
// number, so a reconnecting client reassembles the exact gap-free
// stream. Once the sweep's run goroutine has exited (terminal state set,
// no further events possible) the remaining events are flushed followed
// by one final `event: status` message carrying the full SweepStatus,
// and the stream ends — the watcher's signal to stop reconnecting.
func (g *registry) watchSweep(w http.ResponseWriter, r *http.Request, sr *sweepRun) {
	fl, ok := w.(http.Flusher)
	if !ok {
		capi.WriteError(w, http.StatusInternalServerError, capi.CodeInternal, "streaming unsupported")
		return
	}
	var after uint64
	if h := r.Header.Get("Last-Event-ID"); h != "" {
		if v, err := strconv.ParseUint(h, 10, 64); err == nil {
			after = v
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	writeEvent := func(ev capi.SweepEvent) {
		b, _ := json.Marshal(ev)
		fmt.Fprintf(w, "id: %d\nevent: sweep\ndata: %s\n\n", ev.Seq, b)
		after = ev.Seq
	}
	// Heartbeat comments keep intermediaries from timing out an idle
	// stream while a long shard simulates.
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		evs, wake := sr.pool.EventsSince(after)
		for _, ev := range evs {
			writeEvent(ev)
		}
		if len(evs) > 0 {
			fl.Flush()
		}
		select {
		case <-sr.finished:
			// The run goroutine exited: terminal state is set and no event
			// can follow. Drain what was emitted since the last read, then
			// close with the authoritative status document.
			evs, _ := sr.pool.EventsSince(after)
			for _, ev := range evs {
				writeEvent(ev)
			}
			b, _ := json.Marshal(g.status(sr))
			fmt.Fprintf(w, "id: %d\nevent: status\ndata: %s\n\n", after, b)
			fl.Flush()
			return
		default:
		}
		select {
		case <-wake:
		case <-sr.finished:
			// Loop once more: the next iteration drains and closes.
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
		}
	}
}
