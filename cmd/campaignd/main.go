// Command campaignd distributes fault-injection campaigns — single ones
// or whole experiment grids — over HTTP.
//
// One binary, two modes:
//
//	campaignd serve -soc 1 -shards 16 -journal soc1.jsonl [-addr :8372] [flags]
//	campaignd serve -sweep table1 -shards 8 -journal grid.jsonl [-outdir results]
//	campaignd work  -url http://coordinator:8372 [-name w1] [-poll 2s]
//
// serve plans each campaign (the injection plan is drawn up front, so
// sharding is a pure index split), loads any journaled shards, then
// hands out shard leases to workers, ingests their partial results,
// journals each one, and merges every campaign into the exact
// single-process result the moment its last shard lands. With -sweep, a
// whole grid (Table I across all benchmarks, Table III's fluxes x
// engines, a LET sweep) feeds one lease pool; the merged results render
// the same tables the in-process ssresf drivers produce, byte for byte.
// Leases expire: a shard leased to a worker that dies is re-issued to
// the next worker. Live workers heartbeat their leases, so a long shard
// is renewed, not re-issued.
//
// work polls the coordinator in a lease/execute/post loop. A worker
// builds each campaign (netlist, golden run, checkpoint schedule) once
// per process and reuses it for every shard it executes; the
// coordinator's golden-run-affinity scheduling keeps a worker on the
// campaign it has already built while that campaign has pending shards.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = runServe(os.Args[2:])
	case "work":
		err = runWork(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "campaignd: unknown mode %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if errors.Is(err, flag.ErrHelp) {
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  campaignd serve -soc N -shards K [-journal FILE] [-addr HOST:PORT] [campaign flags]
  campaignd serve -sweep table1|table3|let [-lets L,..] [-fluxes F,..] [-outdir DIR] [flags]
  campaignd work -url http://HOST:PORT [-name ID] [-poll DUR]`)
}

// defaultWorkerName derives a worker identity that is unique enough for
// progress reporting; correctness never depends on it.
func defaultWorkerName() string {
	host, err := os.Hostname()
	if err != nil {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// parseDurationFlag guards the duration flags shared by both modes.
func positiveDuration(name string, d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("-%s must be positive, got %v", name, d)
	}
	return nil
}
