// Command campaignd serves fault-injection sweeps — whole experiment
// grids of campaigns — as resources over a versioned HTTP API.
//
// One binary, two modes:
//
//	campaignd serve [-addr :8372] [-journal fleet.jsonl]           # empty service
//	campaignd serve -sweep table1 -shards 8 -journal grid.jsonl    # self-submitted grid
//	campaignd serve -soc 1 -shards 16 -journal soc1.jsonl          # single campaign
//	campaignd work  -url http://coordinator:8372 [-name w1] [-poll 2s]
//
// serve is a long-lived coordinator. Sweeps are submitted to it — POST
// /v1/sweeps with a declarative grid description, or the -sweep/-soc
// flags, which are nothing more than a self-submission at startup —
// listed (GET /v1/sweeps), watched (GET /v1/sweeps/{fp}), fetched (GET
// /v1/sweeps/{fp}/results) and cancelled (DELETE /v1/sweeps/{fp}); see
// internal/capi for the wire contract and the typed client. For every
// sweep the coordinator builds and plans campaigns incrementally (the
// injection plan is drawn up front, so sharding is a pure index split),
// loads journaled shards, leases the rest to workers across all live
// sweeps from one routing surface, journals every accepted result, and
// merges each campaign into the exact single-process result the moment
// its last shard lands; a drained sweep's rendered tables are byte-
// identical to the in-process ssresf drivers. Leases expire: a shard
// leased to a worker that dies is re-issued to the next worker. Live
// workers heartbeat their leases, so a long shard is renewed, not
// re-issued. serve exits once every submitted sweep is terminal and the
// -linger grace window passes without new work.
//
// work polls the coordinator in a lease/execute/post loop through the
// typed capi client, backing off with jitter while idle. A worker
// builds each campaign (netlist, golden run, checkpoint schedule) once
// per process and reuses it for every shard it executes; the
// coordinator's golden-run-affinity scheduling keeps a worker on the
// campaign it has already built while that campaign has pending shards.
//
// Both modes are observable (see DESIGN.md "Observability" and "Fleet
// federation & live watch"): GET /metrics on the serve API, -debug-addr
// for a side server with /metrics plus net/http/pprof in either mode,
// and -trace FILE to write the shard-lifecycle span journal as Chrome
// trace_event JSON on exit. Workers additionally push their registry to
// the coordinator (-push, default 5s), which re-exposes the merged
// worker-labeled view on GET /metrics/fleet, and every sweep can be
// followed live over GET /v1/sweeps/{fp}?watch=1 (SSE; socfault
// -submit -watch). Instrumentation never changes what a sweep computes.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = runServe(os.Args[2:])
	case "work":
		err = runWork(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "campaignd: unknown mode %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if errors.Is(err, flag.ErrHelp) {
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  campaignd serve [-addr HOST:PORT] [-journal FILE]        # wait for POST /v1/sweeps
  campaignd serve -sweep table1|table3|let [-lets L,..] [-fluxes F,..] [-outdir DIR] [flags]
  campaignd serve -soc N -shards K [-journal FILE] [campaign flags]
  campaignd work -url http://HOST:PORT [-name ID] [-poll DUR]

observability (either mode): -debug-addr HOST:PORT (pprof + /metrics),
-trace FILE (Chrome trace_event span journal); serve also exposes GET
/metrics and the federated GET /metrics/fleet on the API address, and
workers push their registry there every -push (0 disables).`)
}

// defaultWorkerName derives a worker identity that is unique enough for
// progress reporting; correctness never depends on it.
func defaultWorkerName() string {
	host, err := os.Hostname()
	if err != nil {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// parseDurationFlag guards the duration flags shared by both modes.
func positiveDuration(name string, d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("-%s must be positive, got %v", name, d)
	}
	return nil
}
