package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/runstore"
	"repro/internal/shard"
)

// The coordinator protocol, all JSON over HTTP:
//
//	POST /v1/lease    {"worker": ID}            -> 200 shard.Lease
//	                                               204 nothing pending (poll again)
//	                                               410 campaign complete (worker exits)
//	POST /v1/complete {"lease_id", "partial"}   -> 200 accepted
//	                                               409 lease expired/unknown (drop result)
//	GET  /v1/progress                           -> 200 progressReply

type leaseRequest struct {
	Worker string `json:"worker"`
}

type completeRequest struct {
	LeaseID string         `json:"lease_id"`
	Partial *shard.Partial `json:"partial"`
}

type progressReply struct {
	Fingerprint string         `json:"fingerprint"`
	Design      int            `json:"soc"`
	Progress    shard.Progress `json:"progress"`
	Done        bool           `json:"done"`
}

// coordinator serves one campaign's shard queue over HTTP and journals
// every accepted result.
type coordinator struct {
	spec  shard.CampaignSpec
	fp    string
	queue *shard.Queue
	store *runstore.Store // nil = no journal
	now   func() time.Time
}

func (c *coordinator) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/complete", c.handleComplete)
	mux.HandleFunc("GET /v1/progress", c.handleProgress)
	return mux
}

func (c *coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad lease request: "+err.Error(), http.StatusBadRequest)
		return
	}
	l, ok := c.queue.Lease(req.Worker, c.now())
	if !ok {
		if c.queue.Done() {
			w.WriteHeader(http.StatusGone)
			return
		}
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, l)
}

func (c *coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad completion: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Partial == nil {
		http.Error(w, "completion carries no partial", http.StatusBadRequest)
		return
	}
	if err := c.queue.Complete(req.LeaseID, req.Partial, c.now()); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	if c.store != nil {
		if err := c.store.Append(c.fp, req.Partial); err != nil {
			// The result is already accepted and merging will proceed; a
			// journal write failure only weakens crash recovery.
			fmt.Fprintln(os.Stderr, "campaignd: journal append:", err)
		}
	}
	w.WriteHeader(http.StatusOK)
}

func (c *coordinator) handleProgress(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, progressReply{
		Fingerprint: c.fp,
		Design:      c.spec.SoC,
		Progress:    c.queue.Progress(c.now()),
		Done:        c.queue.Done(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// serveOpts is the parsed configuration of one serve run.
type serveOpts struct {
	spec     shard.CampaignSpec
	shards   int
	journal  string
	leaseTTL time.Duration
	linger   time.Duration
	outPath  string
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("campaignd serve", flag.ContinueOnError)
	specOf := shard.CampaignFlags(fs)
	addr := fs.String("addr", "127.0.0.1:8372", "listen address")
	shards := fs.Int("shards", 8, "number of shards to split the campaign into")
	journal := fs.String("journal", "", "append-only shard journal; campaigns restarted with the same journal skip finished shards")
	lease := fs.Duration("lease", 10*time.Minute, "shard lease duration before a silent worker's shard is re-issued; keep it above the expected per-shard runtime or idle workers will redo live shards (harmless but wasteful)")
	linger := fs.Duration("linger", 3*time.Second, "how long to keep answering workers after the campaign completes, so pollers observe completion and exit")
	out := fs.String("out", "", "write the merged campaign result JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cs, err := specOf()
	if err != nil {
		return err
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", *shards)
	}
	if err := positiveDuration("lease", *lease); err != nil {
		return err
	}
	if *linger < 0 {
		return fmt.Errorf("-linger must not be negative, got %v", *linger)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	return serve(serveOpts{
		spec:     cs,
		shards:   *shards,
		journal:  *journal,
		leaseTTL: *lease,
		linger:   *linger,
		outPath:  *out,
	}, ln, os.Stdout)
}

// serve runs the coordinator on an accepted listener until every shard
// has completed, then merges, reports and shuts down. Split from
// runServe so the end-to-end test can drive it on an ephemeral port.
func serve(opts serveOpts, ln net.Listener, stdout io.Writer) error {
	b, err := shard.Build(opts.spec)
	if err != nil {
		return err
	}
	specs, err := shard.Plan(opts.spec, opts.shards, len(b.Jobs))
	if err != nil {
		return err
	}
	queue := shard.NewQueue(specs, opts.leaseTTL)
	var store *runstore.Store
	journaled := 0
	if opts.journal != "" {
		done, err := runstore.Load(opts.journal, b.Fingerprint)
		if err != nil {
			return err
		}
		for _, sp := range specs {
			if p, ok := done[sp.Index]; ok && p.Covers(sp) {
				if err := queue.MarkDone(p); err != nil {
					return err
				}
				journaled++
			}
		}
		store, err = runstore.Open(opts.journal)
		if err != nil {
			return err
		}
		defer store.Close()
	}
	coord := &coordinator{spec: opts.spec, fp: b.Fingerprint, queue: queue, store: store, now: time.Now}
	fmt.Fprintf(stdout, "campaignd: campaign %.12s (SoC%d/%s on %s): %d injections in %d shards, %d journaled, serving on %s\n",
		b.Fingerprint, opts.spec.SoC, opts.spec.Workload, opts.spec.Engine, len(b.Jobs), len(specs), journaled, ln.Addr())

	srv := &http.Server{Handler: coord.mux()}
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.Serve(ln) }()
	select {
	case <-queue.WaitDone():
	case err := <-srvErr:
		return fmt.Errorf("serving: %v", err)
	}
	// Keep answering for the linger window so polling workers observe the
	// 410 completion signal and exit instead of hitting a dead socket.
	select {
	case <-time.After(opts.linger):
	case err := <-srvErr:
		return fmt.Errorf("serving: %v", err)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "campaignd: shutdown:", err)
	}

	res, err := shard.Merge(b, queue.Partials())
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, res.String())
	if opts.outPath != "" {
		f, err := os.Create(opts.outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.WriteJSON(f); err != nil {
			return err
		}
	}
	return nil
}
