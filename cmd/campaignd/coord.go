package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/inject"
	"repro/internal/runstore"
	"repro/internal/shard"
	"repro/internal/sweep"
)

// The coordinator protocol, all JSON over HTTP. One coordinator serves
// one sweep — a whole experiment grid of campaigns, or the degenerate
// single-campaign grid — from one lease pool:
//
//	POST /v1/lease    {"worker": ID}            -> 200 shard.Lease
//	                                               204 nothing pending (poll again)
//	                                               410 sweep complete (worker exits)
//	POST /v1/complete {"lease_id", "fingerprint", "partial"}
//	                                            -> 200 accepted
//	                                               409 duplicate/unroutable (drop result)
//	POST /v1/renew    {"lease_id", "fingerprint"}
//	                                            -> 200 renewReply (keep heartbeating)
//	                                               409 lease gone (stop heartbeating)
//	GET  /v1/progress                           -> 200 progressReply
//
// Completions and renewals are routed by campaign fingerprint — the
// durable key a worker always holds — because an expired lease ID is
// forgotten by the pool. The legacy top-level progress fields describe
// the campaign when the sweep is a single campaign; per-campaign counts
// and ETAs live under "sweep" and never mix shards of different
// fingerprints.

type leaseRequest struct {
	Worker string `json:"worker"`
}

type completeRequest struct {
	LeaseID     string         `json:"lease_id"`
	Fingerprint string         `json:"fingerprint"`
	Partial     *shard.Partial `json:"partial"`
}

type renewRequest struct {
	LeaseID     string `json:"lease_id"`
	Fingerprint string `json:"fingerprint"`
}

type renewReply struct {
	ExpiresAt time.Time `json:"expires_at"`
}

type progressReply struct {
	// Fingerprint and Design identify the campaign when exactly one is
	// being served (the pre-sweep reply shape); under a real sweep they
	// carry the sweep fingerprint and 0.
	Fingerprint string              `json:"fingerprint"`
	Design      int                 `json:"soc"`
	Progress    shard.Progress      `json:"progress"`
	Done        bool                `json:"done"`
	Sweep       sweep.SweepProgress `json:"sweep"`
}

// coordinator serves one sweep's cross-campaign lease pool over HTTP and
// journals every accepted result under its campaign's fingerprint.
type coordinator struct {
	pool   *sweep.Pool
	store  *runstore.Store // nil = no journal
	now    func() time.Time
	single *shard.CampaignSpec // set when the sweep is one campaign
}

func (c *coordinator) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/complete", c.handleComplete)
	mux.HandleFunc("POST /v1/renew", c.handleRenew)
	mux.HandleFunc("GET /v1/progress", c.handleProgress)
	return mux
}

func (c *coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad lease request: "+err.Error(), http.StatusBadRequest)
		return
	}
	l, ok := c.pool.Lease(req.Worker, c.now())
	if !ok {
		if c.pool.Done() {
			w.WriteHeader(http.StatusGone)
			return
		}
		// Idle: everything leased out, or later campaigns still building.
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, l)
}

func (c *coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad completion: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Partial == nil {
		http.Error(w, "completion carries no partial", http.StatusBadRequest)
		return
	}
	fp := req.Fingerprint
	if fp == "" && c.single != nil {
		// Pre-sweep workers never sent a fingerprint; with one campaign
		// served the routing is unambiguous.
		fp = c.single.Fingerprint()
	}
	if err := c.pool.Complete(fp, req.LeaseID, req.Partial, c.now()); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	if c.store != nil {
		if err := c.store.Append(fp, req.Partial); err != nil {
			// The result is already accepted and merging will proceed; a
			// journal write failure only weakens crash recovery.
			fmt.Fprintln(os.Stderr, "campaignd: journal append:", err)
		}
	}
	w.WriteHeader(http.StatusOK)
}

func (c *coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req renewRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad renewal: "+err.Error(), http.StatusBadRequest)
		return
	}
	fp := req.Fingerprint
	if fp == "" && c.single != nil {
		fp = c.single.Fingerprint()
	}
	exp, err := c.pool.Renew(fp, req.LeaseID, c.now())
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, renewReply{ExpiresAt: exp})
}

func (c *coordinator) handleProgress(w http.ResponseWriter, r *http.Request) {
	sp := c.pool.Progress(c.now())
	reply := progressReply{
		Fingerprint: sp.Fingerprint,
		Done:        sp.Done,
		Sweep:       sp,
	}
	if c.single != nil && len(sp.Campaigns) == 1 {
		reply.Fingerprint = sp.Campaigns[0].Fingerprint
		reply.Design = c.single.SoC
		reply.Progress = sp.Campaigns[0].Shards
	}
	writeJSON(w, reply)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// serveOpts is the parsed configuration of one serve run.
type serveOpts struct {
	grid     sweep.Grid
	single   bool // one-campaign mode: legacy report + result-JSON -out
	shards   int  // per campaign; tiny campaigns degrade to fewer
	journal  string
	leaseTTL time.Duration
	linger   time.Duration
	outPath  string // single: merged result JSON; sweep: rendered grid text
	outDir   string // sweep: per-campaign result JSON directory
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("campaignd serve", flag.ContinueOnError)
	specOf := shard.CampaignFlags(fs)
	gridOf := sweep.GridFlags(fs)
	addr := fs.String("addr", "127.0.0.1:8372", "listen address")
	shards := fs.Int("shards", 8, "number of shards to split each campaign into")
	journal := fs.String("journal", "", "append-only shard journal, namespaced per campaign; sweeps restarted with the same journal skip finished shards")
	lease := fs.Duration("lease", 10*time.Minute, "shard lease duration; workers heartbeat at a third of it, so a live shard outrunning the lease is renewed, not re-issued")
	linger := fs.Duration("linger", 3*time.Second, "how long to keep answering workers after the sweep completes, so pollers observe completion and exit")
	out := fs.String("out", "", "single campaign: write the merged result JSON here; sweep: write the rendered tables here")
	outDir := fs.String("outdir", "", "sweep: write each campaign's merged result JSON into this directory, named by campaign key")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", *shards)
	}
	if err := positiveDuration("lease", *lease); err != nil {
		return err
	}
	if *linger < 0 {
		return fmt.Errorf("-linger must not be negative, got %v", *linger)
	}
	grid, isSweep, err := gridOf()
	if err != nil {
		return err
	}
	single := !isSweep
	if single {
		cs, err := specOf()
		if err != nil {
			return err
		}
		grid = singleCampaignGrid(cs)
	}
	if *outDir != "" {
		// Create it now: failing after the fleet has simulated for
		// minutes would lose the sweep's in-flight work.
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("-outdir: %v", err)
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	return serve(serveOpts{
		grid:     grid,
		single:   single,
		shards:   *shards,
		journal:  *journal,
		leaseTTL: *lease,
		linger:   *linger,
		outPath:  *out,
		outDir:   *outDir,
	}, ln, os.Stdout)
}

// singleCampaignGrid wraps one campaign as a degenerate sweep whose
// rendered artifact is the classic campaign report.
func singleCampaignGrid(cs shard.CampaignSpec) sweep.Grid {
	it := sweep.Item{Key: fmt.Sprintf("soc%d-%s", cs.SoC, cs.Workload), Campaign: cs}
	return sweep.Grid{
		Spec: sweep.SweepSpec{Name: "campaign", Items: []sweep.Item{it}},
		Render: func(w io.Writer, results map[string]*inject.Result) error {
			r, ok := results[cs.Fingerprint()]
			if !ok {
				return fmt.Errorf("campaign %.12s has no merged result", cs.Fingerprint())
			}
			fmt.Fprint(w, r.String())
			return nil
		},
	}
}

// syncWriter serializes progress lines: the campaign builder goroutine
// and the merge loop both narrate to the same writer.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// serve runs the coordinator on an accepted listener until every
// campaign of the sweep has completed, then renders and shuts down.
// Campaigns build and open one at a time while workers already drain
// earlier ones; each campaign merges (and its golden run is released)
// the moment its last shard lands. Split from runServe so the
// end-to-end tests can drive it on an ephemeral port.
func serve(opts serveOpts, ln net.Listener, rawStdout io.Writer) error {
	items := opts.grid.Spec.Items
	stdout := &syncWriter{w: rawStdout}
	pool, err := sweep.NewPool(opts.grid.Spec, opts.leaseTTL)
	if err != nil {
		return err
	}
	var store *runstore.Store
	journaled := map[string]map[int]*shard.Partial{}
	if opts.journal != "" {
		if journaled, err = runstore.LoadAll(opts.journal); err != nil {
			return err
		}
		if store, err = runstore.Open(opts.journal); err != nil {
			return err
		}
		defer store.Close()
	}

	var single *shard.CampaignSpec
	if opts.single {
		single = &items[0].Campaign
	}
	coord := &coordinator{pool: pool, store: store, now: time.Now, single: single}
	fmt.Fprintf(stdout, "campaignd: sweep %s (%.12s): %d campaigns, %d shards each, serving on %s\n",
		opts.grid.Spec.Name, opts.grid.Spec.Fingerprint(), len(items), opts.shards, ln.Addr())

	srv := &http.Server{Handler: coord.mux()}
	defer srv.Close()
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.Serve(ln) }()

	// Builder: campaigns become leasable in sweep order as their plans
	// (netlist, golden run, drawn injections) come up; the built campaign
	// is kept only until its merge. stop ends the builder when serve
	// bails out early, so it does not keep opening campaigns (or writing
	// progress lines) after the coordinator is gone.
	var mu sync.Mutex
	builts := make([]*shard.Built, len(items))
	buildErr := make(chan error, 1)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for i, it := range items {
			select {
			case <-stop:
				return
			default:
			}
			b, err := shard.Build(it.Campaign)
			if err != nil {
				buildErr <- fmt.Errorf("building campaign %q: %v", it.Key, err)
				return
			}
			// A sweep's one -shards knob covers campaigns of very different
			// sizes, so tiny campaigns degrade to fewer shards; a single
			// campaign keeps the strict fail-fast validation socfault has.
			var specs []shard.Spec
			if opts.single {
				specs, err = shard.Plan(it.Campaign, opts.shards, len(b.Jobs))
			} else {
				specs, err = shard.PlanAtMost(it.Campaign, opts.shards, len(b.Jobs))
			}
			if err != nil {
				buildErr <- fmt.Errorf("planning campaign %q: %v", it.Key, err)
				return
			}
			mu.Lock()
			builts[i] = b
			mu.Unlock()
			select {
			case <-stop:
				return
			default:
			}
			nJournaled, err := pool.Open(i, specs, journaled[b.Fingerprint])
			if err != nil {
				buildErr <- err
				return
			}
			fmt.Fprintf(stdout, "campaignd: campaign %s (%.12s, SoC%d/%s on %s): %d injections in %d shards, %d journaled\n",
				it.Key, b.Fingerprint, it.Campaign.SoC, it.Campaign.Workload, it.Campaign.Engine, len(b.Jobs), len(specs), nJournaled)
		}
	}()

	// Merge each campaign the moment it completes, releasing its build.
	results := make(map[string]*inject.Result, len(items))
	for merged := 0; merged < len(items); {
		select {
		case idx := <-pool.Completed():
			mu.Lock()
			b := builts[idx]
			builts[idx] = nil
			mu.Unlock()
			res, err := shard.Merge(b, pool.Partials(idx))
			if err != nil {
				return fmt.Errorf("merging campaign %q: %v", items[idx].Key, err)
			}
			results[b.Fingerprint] = res
			merged++
			fmt.Fprintf(stdout, "campaignd: campaign %s (%.12s) merged: %d injections, %d/%d campaigns done\n",
				items[idx].Key, b.Fingerprint, len(res.Injections), merged, len(items))
			if opts.outDir != "" {
				if err := writeResultJSON(filepath.Join(opts.outDir, items[idx].Key+".json"), res); err != nil {
					return err
				}
			}
		case err := <-buildErr:
			return err
		case err := <-srvErr:
			return fmt.Errorf("serving: %v", err)
		}
	}
	// Keep answering for the linger window so polling workers observe the
	// 410 completion signal and exit instead of hitting a dead socket.
	select {
	case <-time.After(opts.linger):
	case err := <-srvErr:
		return fmt.Errorf("serving: %v", err)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "campaignd: shutdown:", err)
	}

	// Sweep-level aggregation: the merged results feed the grid's ssresf
	// renderer, bit-identical to the in-process experiment drivers.
	var rendered bytes.Buffer
	if err := opts.grid.Render(&rendered, results); err != nil {
		return err
	}
	if _, err := stdout.Write(rendered.Bytes()); err != nil {
		return err
	}
	if opts.outPath != "" {
		if opts.single {
			return writeResultJSON(opts.outPath, results[items[0].Campaign.Fingerprint()])
		}
		return os.WriteFile(opts.outPath, rendered.Bytes(), 0o644)
	}
	return nil
}

func writeResultJSON(path string, res *inject.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return res.WriteJSON(f)
}
