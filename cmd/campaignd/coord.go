package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"

	"repro/internal/capi"
	"repro/internal/inject"
	"repro/internal/lake"
	"repro/internal/obs"
	"repro/internal/runstore"
	"repro/internal/shard"
	"repro/internal/sweep"
)

// The coordinator is a long-lived, multi-sweep service: sweeps are
// resources, submitted, watched and cancelled over the versioned API
// documented in internal/capi. Any number of sweeps are live at once;
// lease/complete/renew route across all of them (completions and
// renewals by campaign fingerprint — the durable key a worker always
// holds, because an expired lease ID is forgotten by the pool), and
// each sweep builds, drains, merges and renders independently. The
// -sweep/-soc flags are nothing special anymore: they are a
// self-submission performed at startup, exactly equivalent to POSTing
// the same grid to /v1/sweeps.

// errCancelled is drive's internal "the sweep was cancelled" signal.
var errCancelled = errors.New("sweep cancelled")

// sweepRun is one sweep resource: its grid, its lease pool, its
// lifecycle state, and — once done — its rendered output.
type sweepRun struct {
	fp     string
	grid   sweep.Grid
	pool   *sweep.Pool
	cfps   []string            // campaign fingerprints, parallel to grid.Spec.Items
	single *shard.CampaignSpec // set when the sweep is one -soc campaign
	params json.RawMessage     // declarative grid params, journaled so a standby can rebuild the sweep
	seq    int                 // submission order, for lease routing

	state    string // capi.State*
	stateMsg string // failure detail when state is failed
	rendered []byte // the grid's rendered artifact, set when done

	stop     chan struct{} // closed on cancel; ends the build/merge loops
	stopOnce sync.Once
	finished chan struct{} // closed when the run goroutine exits
}

// registry is the coordinator's sweep table plus everything the
// handlers share: the journal, the clock, and the change signal the
// serve loop blocks on.
type registry struct {
	mu        sync.Mutex
	sweeps    map[string]*sweepRun // by sweep fingerprint
	order     []*sweepRun          // submission order
	byCamp    map[string]*sweepRun // campaign fingerprint -> owning sweep
	journaled map[string]map[int]*shard.Partial
	store     *runstore.Store // nil = no journal
	shards    int
	ttl       time.Duration
	epoch     uint64  // coordinator incarnation; stamps every lease as a fencing token
	spec      float64 // straggler re-issue factor (0 = pool default, negative = off)
	auditFrac float64 // fraction of completed shards re-executed for cross-checking (0 = off)
	maxAtt    int     // per-shard execution bound before quarantine (0 = unbounded)
	seq       int
	now       func() time.Time
	stdout    *syncWriter
	log       *slog.Logger       // structured narration; epoch-tagged when led
	obs       *obs.Registry      // metrics exposition; nil only in unit tests
	fleet     *obs.Fleet         // worker-pushed metrics federation; nil only in unit tests
	sm        *shard.Metrics     // lease/fence/speculation counters, shared by every pool
	tracer    *obs.Tracer        // shard-lifecycle span journal; nil = tracing off
	lake      *lake.Store        // fleet-wide artifact lake; nil = disabled
	builder   shard.Builder      // campaign construction backend (lake-backed when lake is set)
	partials  shard.PartialCache // lake partial cache; nil = disabled
	initial   *sweepRun          // the self-submitted sweep, if any
	outPath   string             // initial sweep's rendered-output file
	outDir    string             // initial sweep's per-campaign JSON directory
	single    bool               // initial sweep is one -soc campaign
	submitted bool               // a sweep was ever submitted (survives purges)
	draining  bool               // graceful shutdown: leases and submissions answer 503 + Retry-After
	dead      bool               // crash-stopped (deposed or test-killed): no further journal writes
	changed   chan struct{}

	// Worker health, guarded by its own mutex: the pool's audit hooks run
	// while the pool lock is held, so they must not call back into any
	// pool (g.mu alone is safe — no g.mu section takes a pool lock). A
	// worker outvoted in workerStrikeThreshold audits is quarantined: its
	// lease requests are refused with a typed error until the coordinator
	// restarts.
	healthMu    sync.Mutex
	strikes     map[string]int
	quarWorkers map[string]bool
}

// workerStrikeThreshold is how many lost audit votes quarantine a worker.
const workerStrikeThreshold = 2

func newRegistry(opts serveOpts, epoch uint64, store *runstore.Store, journaled map[string]map[int]*shard.Partial, stdout *syncWriter) *registry {
	lg := newLogger(stdout)
	if epoch > 0 {
		lg = lg.With("epoch", epoch)
	}
	return &registry{
		log:         lg,
		sweeps:      map[string]*sweepRun{},
		byCamp:      map[string]*sweepRun{},
		journaled:   journaled,
		store:       store,
		shards:      opts.shards,
		ttl:         opts.leaseTTL,
		epoch:       epoch,
		spec:        opts.specFactor,
		auditFrac:   opts.auditFrac,
		maxAtt:      opts.maxAttempts,
		now:         time.Now,
		stdout:      stdout,
		outPath:     opts.outPath,
		outDir:      opts.outDir,
		single:      opts.single,
		changed:     make(chan struct{}, 1),
		strikes:     map[string]int{},
		quarWorkers: map[string]bool{},
	}
}

// ping nudges the serve loop after any submission or terminal
// transition; the buffered channel coalesces bursts.
func (g *registry) ping() {
	select {
	case g.changed <- struct{}{}:
	default:
	}
}

// idle reports whether the coordinator has nothing left to serve: at
// least one sweep was ever submitted and all still-registered ones are
// terminal (a purged sweep leaves the registry but still counts as having
// been served).
func (g *registry) idle() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.submitted {
		return false
	}
	for _, sr := range g.order {
		if !capi.TerminalState(sr.state) {
			return false
		}
	}
	return true
}

// submit registers a sweep and starts its run goroutine. Submission is
// idempotent on the sweep fingerprint: a live or done duplicate returns
// the existing resource; a cancelled or failed one is replaced by a
// fresh run (journaled shards — including those a cancelled run's
// workers delivered mid-flight — restore on open, so re-submission
// resumes rather than re-simulates). Grids overlapping a live sweep's
// campaigns are refused: completions route by campaign fingerprint, and
// two live owners would make that routing ambiguous.
func (g *registry) submit(grid sweep.Grid, params json.RawMessage, single *shard.CampaignSpec, initial bool) (*sweepRun, bool, error) {
	fp, err := grid.Spec.Fingerprint()
	if err != nil {
		return nil, false, err
	}
	cfps := make([]string, len(grid.Spec.Items))
	for i, it := range grid.Spec.Items {
		if cfps[i], err = it.Campaign.Fingerprint(); err != nil {
			return nil, false, err
		}
	}
	pool, err := sweep.NewPool(grid.Spec, g.ttl)
	if err != nil {
		return nil, false, err
	}
	pool.SetEpoch(g.epoch)
	pool.SetMetrics(g.sm)
	if g.spec != 0 {
		pool.SetSpeculateFactor(g.spec)
	}
	pool.SetMaxAttempts(g.maxAtt)
	if g.auditFrac > 0 {
		pool.SetAudit(g.auditFrac, g.now().UnixNano())
	}
	pool.SetAuditSink(g.strikeWorker, g.auditReplace)
	g.mu.Lock()
	if prev, ok := g.sweeps[fp]; ok && (prev.state == capi.StateRunning || prev.state == capi.StateDone) {
		g.mu.Unlock()
		return prev, false, nil
	}
	// Refuse overlap with other live sweeps before touching any existing
	// registration: a refused resubmission must leave the cancelled/failed
	// incarnation intact as a resource.
	for i, it := range grid.Spec.Items {
		cfp := cfps[i]
		if owner, ok := g.byCamp[cfp]; ok && !capi.TerminalState(owner.state) && owner.fp != fp {
			g.mu.Unlock()
			return nil, false, fmt.Errorf("campaign %q (%.12s) already belongs to live sweep %.12s", it.Key, cfp, owner.fp)
		}
	}
	if prev, ok := g.sweeps[fp]; ok {
		// Replace the cancelled/failed incarnation in submission order. Its
		// per-sweep gauges go too: the fresh pool re-registers under the
		// same label, and two closures exporting one series would race.
		prev.pool.UnregisterObs()
		for i, sr := range g.order {
			if sr == prev {
				g.order = append(g.order[:i], g.order[i+1:]...)
				break
			}
		}
		delete(g.sweeps, fp)
	}
	g.seq++
	sr := &sweepRun{
		fp:       fp,
		grid:     grid,
		pool:     pool,
		cfps:     cfps,
		single:   single,
		params:   params,
		seq:      g.seq,
		state:    capi.StateRunning,
		stop:     make(chan struct{}),
		finished: make(chan struct{}),
	}
	g.sweeps[fp] = sr
	g.order = append(g.order, sr)
	g.submitted = true
	for _, cfp := range cfps {
		g.byCamp[cfp] = sr
	}
	if initial {
		g.initial = sr
	}
	g.mu.Unlock()
	g.ping()
	pool.RegisterObs(g.obs)
	g.tracer.Instant("submit", "sweep", 0, int64(sr.seq), map[string]any{
		"sweep": fp12(fp), "campaigns": len(grid.Spec.Items),
	})
	// Journal the submission: a warm standby rebuilds its sweep registry
	// from these records, so a sweep whose spec lives only in a dead
	// leader's memory would be unrecoverable.
	g.journalSweep(sr, capi.StateRunning)
	g.log.Info("sweep submitted", "sweep", grid.Spec.Name, "fp", fp12(fp),
		"campaigns", len(grid.Spec.Items), "shards", g.shards)
	go g.run(sr)
	return sr, true, nil
}

// journalSweep appends a sweep lifecycle record. runstore's compaction
// keeps only the latest record per sweep and drops terminal ones, so
// the journal carries exactly the registry a standby must rebuild.
func (g *registry) journalSweep(sr *sweepRun, state string) {
	store := g.journalStore()
	if store == nil {
		return
	}
	rec := runstore.SweepRecord{
		Fingerprint: sr.fp,
		Name:        sr.grid.Spec.Name,
		State:       state,
		Params:      sr.params,
		Single:      sr.single,
	}
	if err := store.AppendSweep(rec); err != nil {
		// Lost registry durability only; the sweep still runs here.
		g.log.Warn("journal sweep record failed", "fp", fp12(sr.fp), "err", err)
	}
}

// journalStore returns the journal to append to, or nil when there is
// none — or when this coordinator has crash-stopped: a deposed leader
// must never write behind its successor's back.
func (g *registry) journalStore() *runstore.Store {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.dead {
		return nil
	}
	return g.store
}

// setDraining flips the registry into graceful shutdown: lease and
// submit requests answer 503 + Retry-After from here on.
func (g *registry) setDraining() {
	g.mu.Lock()
	g.draining = true
	g.mu.Unlock()
	g.ping()
}

func (g *registry) isDraining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// markDead crash-stops the registry's durable side effects and winds
// down every live sweep's build/merge loops. Used when the coordinator
// is deposed (a higher epoch holds the leader lease) or killed by the
// test harness: the journal now belongs to the successor.
func (g *registry) markDead() {
	g.mu.Lock()
	g.dead = true
	live := append([]*sweepRun(nil), g.order...)
	g.mu.Unlock()
	for _, sr := range live {
		sr.pool.Cancel()
		sr.stopOnce.Do(func() { close(sr.stop) })
	}
	g.ping()
}

// leasedShards counts shards currently leased out across every sweep,
// expiring stale leases as a side effect — the quantity a graceful
// drain waits on.
func (g *registry) leasedShards() int {
	order, _ := g.liveSweeps()
	now := g.now()
	total := 0
	for _, sr := range order {
		for _, cp := range sr.pool.Progress(now).Campaigns {
			total += cp.Shards.Leased
		}
	}
	return total
}

// cancel transitions a live sweep to cancelled: its pool stops leasing,
// its build/merge loops stop, leased shards finish (their completions
// are still accepted and journaled) or expire. Cancelling a terminal
// sweep is a no-op returning its state.
func (g *registry) cancel(sr *sweepRun) string {
	g.mu.Lock()
	if capi.TerminalState(sr.state) {
		state := sr.state
		g.mu.Unlock()
		return state
	}
	sr.state = capi.StateCancelled
	g.mu.Unlock()
	sr.pool.Cancel()
	sr.stopOnce.Do(func() { close(sr.stop) })
	g.ping()
	g.log.Info("sweep cancelled", "sweep", sr.grid.Spec.Name, "fp", fp12(sr.fp))
	return capi.StateCancelled
}

// run drives one sweep to a terminal state.
func (g *registry) run(sr *sweepRun) {
	defer close(sr.finished)
	err := g.drive(sr)
	g.mu.Lock()
	var state string
	switch {
	case sr.state == capi.StateCancelled || errors.Is(err, errCancelled):
		state = capi.StateCancelled
	case err != nil:
		state = capi.StateFailed
		sr.stateMsg = err.Error()
	default:
		state = capi.StateDone
	}
	g.mu.Unlock()
	// Journal the terminal record before publishing the state: anyone who
	// observes the transition (and, say, purges on it) must find the
	// journal already past it.
	g.journalSweep(sr, state)
	g.mu.Lock()
	sr.state = state
	g.mu.Unlock()
	if state == capi.StateDone && sr != g.initialSweep() {
		// An API-submitted sweep that merged and rendered has delivered:
		// its results travel over GET /v1/sweeps/{fp}/results, and the
		// journaled shards' only remaining use is speeding up an identical
		// resubmission. Mark them terminal so the next Open compacts them
		// away — a long-lived coordinator's journal stays proportional to
		// its live work, not its history. (The in-memory view keeps them,
		// so a same-process resubmission still answers instantly.) The
		// self-submitted batch-job sweep is exempt: its journal IS its
		// recovery artifact — a coordinator re-run on the same flags and
		// journal must merge and render without simulating anything, which
		// TestServeWorkEndToEnd/TestServeSweepEndToEnd pin.
		g.markJournalTerminal(sr)
	}
	if state == capi.StateFailed {
		// A failed sweep will never merge: stop its builder and refuse its
		// pending shards to the fleet, exactly as a cancel does — workers
		// must not burn hours on shards routed into a dead resource.
		sr.pool.Cancel()
		sr.stopOnce.Do(func() { close(sr.stop) })
		g.log.Error("sweep failed", "sweep", sr.grid.Spec.Name, "fp", fp12(sr.fp), "err", err)
	}
	g.ping()
}

// drive builds and opens the sweep's campaigns incrementally (workers
// drain earlier campaigns while later ones build), merges each campaign
// the moment its last shard lands, and renders the grid once every
// campaign is merged. It returns errCancelled when the sweep is
// cancelled mid-flight.
func (g *registry) drive(sr *sweepRun) error {
	items := sr.grid.Spec.Items

	var mu sync.Mutex
	builts := make([]*shard.Built, len(items))
	buildErr := make(chan error, 1)
	go func() {
		for i, it := range items {
			select {
			case <-sr.stop:
				return
			default:
			}
			buildStart := time.Now()
			b, fetched, err := g.buildCampaign(it.Campaign)
			if err != nil {
				buildErr <- fmt.Errorf("building campaign %q: %v", it.Key, err)
				return
			}
			// The "golden" span marks a real golden simulation; a campaign
			// adopted from the artifact lake emits none, which is what lets a
			// fleet trace assert each golden run happened exactly once anywhere.
			if !fetched {
				g.tracer.Span("golden", "coord", 0, int64(i), buildStart,
					map[string]any{"campaign": fp12(b.Fingerprint)})
			}
			// A sweep's one -shards knob covers campaigns of very different
			// sizes, so tiny campaigns degrade to fewer shards; a single
			// campaign keeps the strict fail-fast validation socfault has.
			var specs []shard.Spec
			if sr.single != nil {
				specs, err = shard.Plan(it.Campaign, g.shards, len(b.Jobs))
			} else {
				specs, err = shard.PlanAtMost(it.Campaign, g.shards, len(b.Jobs))
			}
			if err != nil {
				buildErr <- fmt.Errorf("planning campaign %q: %v", it.Key, err)
				return
			}
			mu.Lock()
			builts[i] = b
			mu.Unlock()
			select {
			case <-sr.stop:
				return
			default:
			}
			nJournaled, err := sr.pool.Open(i, specs, g.seedPartials(b.Fingerprint, specs))
			if err != nil {
				buildErr <- err
				return
			}
			g.log.Info("campaign opened", "campaign", it.Key, "fp", fp12(b.Fingerprint),
				"soc", it.Campaign.SoC, "workload", it.Campaign.Workload, "engine", it.Campaign.Engine,
				"injections", len(b.Jobs), "shards", len(specs), "journaled", nJournaled)
		}
	}()

	results := make(map[string]*inject.Result, len(items))
	for merged := 0; merged < len(items); {
		select {
		case idx := <-sr.pool.Completed():
			// A campaign whose queue finished by quarantining shards has no
			// complete result set: fail the sweep with the poison shards named
			// rather than hang on partials that will never arrive (the bound
			// exists so one crashing shard cannot pin the fleet forever).
			if quar := sr.pool.Quarantined(idx); len(quar) > 0 {
				idxs := make([]int, 0, len(quar))
				for si := range quar {
					idxs = append(idxs, si)
				}
				sort.Ints(idxs)
				return fmt.Errorf("campaign %q: %d shard(s) quarantined as poison work; shard %d: %s",
					items[idx].Key, len(quar), idxs[0], quar[idxs[0]])
			}
			mu.Lock()
			b := builts[idx]
			builts[idx] = nil
			mu.Unlock()
			res, err := shard.Merge(b, sr.pool.Partials(idx))
			if err != nil {
				return fmt.Errorf("merging campaign %q: %v", items[idx].Key, err)
			}
			results[b.Fingerprint] = res
			merged++
			g.log.Info("campaign merged", "campaign", items[idx].Key, "fp", fp12(b.Fingerprint),
				"injections", len(res.Injections), "merged", merged, "campaigns", len(items))
			if sr == g.initial && g.outDir != "" {
				if err := writeResultJSON(filepath.Join(g.outDir, items[idx].Key+".json"), res); err != nil {
					return err
				}
			}
		case err := <-buildErr:
			return err
		case <-sr.stop:
			return errCancelled
		}
	}

	// Sweep-level aggregation: the merged results feed the grid's ssresf
	// renderer, bit-identical to the in-process experiment drivers.
	var rendered bytes.Buffer
	if err := sr.grid.Render(&rendered, results); err != nil {
		return err
	}
	g.mu.Lock()
	sr.rendered = rendered.Bytes()
	g.mu.Unlock()
	if sr == g.initial {
		// The self-submitted sweep keeps the batch-job surface: rendered
		// output on stdout and in -out, per-campaign JSONs in -outdir.
		if _, err := g.stdout.Write(rendered.Bytes()); err != nil {
			return err
		}
		if g.outPath != "" {
			if g.single {
				return writeResultJSON(g.outPath, results[sr.cfps[0]])
			}
			return os.WriteFile(g.outPath, rendered.Bytes(), 0o644)
		}
	} else {
		g.log.Info("sweep done", "sweep", sr.grid.Spec.Name, "fp", fp12(sr.fp),
			"results", "/v1/sweeps/"+sr.fp+"/results")
	}
	return nil
}

// buildCampaign constructs a campaign through the configured backend:
// the artifact lake's claim-or-fetch builder when a lake is attached
// (publishing after a real build, falling back to local on any lake
// error), a plain local build otherwise. fetched reports golden-run
// adoption — those builds emit no "golden" span.
func (g *registry) buildCampaign(cs shard.CampaignSpec) (*shard.Built, bool, error) {
	if g.builder != nil {
		return g.builder.Build(cs, nil)
	}
	b, err := shard.Build(cs)
	return b, false, err
}

// seedPartials assembles a campaign's restore map for Pool.Open: the
// journal's shards first, then — for every planned shard the journal
// does not cover — the artifact lake's memoized partial for that plan
// range, if any. Lake partials were published by another sweep's plan,
// so their shard index is rewritten to this plan's before keying; the
// Covers check in Open still validates range and length. This is the
// cross-sweep path: a resubmitted overlapping sweep on a fresh journal
// completes without re-simulating the shards the fleet already ran.
func (g *registry) seedPartials(fp string, specs []shard.Spec) map[int]*shard.Partial {
	seed := g.journaledFor(fp)
	if g.partials == nil {
		return seed
	}
	for _, sp := range specs {
		if _, ok := seed[sp.Index]; ok {
			continue
		}
		p := g.partials.GetPartial(fp, sp.Start, sp.End)
		if p == nil {
			continue
		}
		p.Index = sp.Index
		if !p.Covers(sp) {
			continue
		}
		if seed == nil {
			seed = map[int]*shard.Partial{}
		}
		seed[sp.Index] = p
	}
	return seed
}

// campaignFingerprints lists one sweep's campaign fingerprints,
// computed once at submission.
func campaignFingerprints(sr *sweepRun) []string {
	return sr.cfps
}

// initialSweep returns the self-submitted sweep, if any.
func (g *registry) initialSweep() *sweepRun {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.initial
}

// droppableFingerprints returns the subset of sr's campaign fingerprints
// whose journal records may be marked dead on sr's behalf: campaigns
// another sweep has since taken over are its resumability now, and the
// self-submitted initial sweep's campaigns are never droppable — its
// journal is its recovery artifact, and a later API sweep sharing a
// campaign (possible once the initial sweep is terminal) must not
// invalidate it. Callers hold g.mu.
func (g *registry) droppableFingerprints(sr *sweepRun) []string {
	protected := map[string]bool{}
	if g.initial != nil && g.initial != sr {
		for _, cfp := range campaignFingerprints(g.initial) {
			protected[cfp] = true
		}
	}
	var fps []string
	for _, cfp := range campaignFingerprints(sr) {
		if owner, ok := g.byCamp[cfp]; ok && owner != sr {
			continue
		}
		if protected[cfp] {
			continue
		}
		fps = append(fps, cfp)
	}
	return fps
}

// markJournalTerminal appends a terminal marker for the sweep's
// droppable campaigns.
func (g *registry) markJournalTerminal(sr *sweepRun) {
	g.mu.Lock()
	store := g.store
	fps := g.droppableFingerprints(sr)
	g.mu.Unlock()
	if store == nil || len(fps) == 0 {
		return
	}
	if err := store.MarkTerminal(fps); err != nil {
		// Only journal hygiene is lost; the records stay loadable.
		g.log.Warn("journal terminal marker failed", "fp", fp12(sr.fp), "err", err)
	}
}

// purge removes a (terminal) sweep from the registry and eagerly drops
// its droppable campaigns' journal records: later completions for it are
// refused, GETs 404, and a resubmission starts from a clean slate.
// Campaigns another sweep has taken over — or shared with the exempt
// initial sweep — are left alone (see droppableFingerprints).
func (g *registry) purge(sr *sweepRun) {
	g.mu.Lock()
	delete(g.sweeps, sr.fp)
	for i, got := range g.order {
		if got == sr {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	// Journal state is the narrow set (droppable only); routing is the
	// wide one — every campaign this sweep still owns stops resolving to
	// the removed resource.
	fps := g.droppableFingerprints(sr)
	for _, cfp := range fps {
		delete(g.journaled, cfp)
	}
	for _, cfp := range campaignFingerprints(sr) {
		if g.byCamp[cfp] == sr {
			delete(g.byCamp, cfp)
		}
	}
	store := g.store
	g.mu.Unlock()
	// The purged sweep's per-sweep gauges leave the exposition with it.
	sr.pool.UnregisterObs()
	if store != nil {
		if err := store.Purge(fps); err != nil {
			g.log.Warn("journal purge failed", "fp", fp12(sr.fp), "err", err)
		}
	}
	g.ping()
	g.log.Info("sweep purged", "sweep", sr.grid.Spec.Name, "fp", fp12(sr.fp))
}

// journaledFor snapshots the journaled shards of one campaign. The map
// grows as live completions land, so a later submission reusing a
// campaign (after a cancel, say) restores everything delivered so far.
func (g *registry) journaledFor(fp string) map[int]*shard.Partial {
	g.mu.Lock()
	defer g.mu.Unlock()
	src := g.journaled[fp]
	if len(src) == 0 {
		return nil
	}
	out := make(map[int]*shard.Partial, len(src))
	for i, p := range src {
		out[i] = p
	}
	return out
}

// recordJournaled mirrors an accepted completion into the in-memory
// journal view (and the on-disk journal, if any). First wins: once a
// (fingerprint, shard index) pair has landed, later copies — a
// speculative backup's duplicate, or a stale-epoch completion arriving
// after a failover — are dropped without touching the journal, so the
// bytes that merged are the bytes that persist.
func (g *registry) recordJournaled(fp string, p *shard.Partial) {
	g.mu.Lock()
	m := g.journaled[fp]
	if m == nil {
		m = map[int]*shard.Partial{}
		g.journaled[fp] = m
	}
	if _, dup := m[p.Index]; dup {
		g.mu.Unlock()
		return
	}
	m[p.Index] = p
	store := g.store
	dead := g.dead
	pc := g.partials
	g.mu.Unlock()
	if store != nil && !dead {
		if err := store.Append(fp, p); err != nil {
			// The result is already accepted and merging will proceed; a
			// journal write failure only weakens crash recovery.
			g.log.Warn("journal append failed", "campaign", fp12(fp), "shard", p.Index, "err", err)
		}
	}
	if pc != nil && !dead {
		// Promote the journaled shard to a durable fleet-wide cache object:
		// any future sweep whose plan covers the same range adopts it
		// instead of re-simulating. Best-effort by PartialCache contract.
		pc.PutPartial(fp, p)
	}
}

// strikeWorker records one lost audit vote against a worker; at
// workerStrikeThreshold the worker is quarantined — its lease requests
// answer 403 quarantined from then on, and it is counted under
// fleet_workers{state="quarantined"}. Runs as a pool audit hook (pool
// lock held), so it touches only healthMu.
func (g *registry) strikeWorker(worker string) {
	if worker == "" {
		return
	}
	g.healthMu.Lock()
	g.strikes[worker]++
	n := g.strikes[worker]
	newly := n >= workerStrikeThreshold && !g.quarWorkers[worker]
	if newly {
		g.quarWorkers[worker] = true
	}
	g.healthMu.Unlock()
	if newly {
		g.log.Warn("worker quarantined after repeated audit divergence", "worker", worker, "strikes", n)
	} else {
		g.log.Warn("worker outvoted in audit", "worker", worker, "strikes", n)
	}
}

// workerQuarantined reports whether a worker's leases are refused.
func (g *registry) workerQuarantined(worker string) bool {
	g.healthMu.Lock()
	defer g.healthMu.Unlock()
	return g.quarWorkers[worker]
}

// quarantinedWorkerCount feeds fleet_workers{state="quarantined"}.
func (g *registry) quarantinedWorkerCount() int {
	g.healthMu.Lock()
	defer g.healthMu.Unlock()
	return len(g.quarWorkers)
}

// auditReplace re-journals a corrected partial after an audit majority
// outvoted the original completion. The in-memory view is first-wins
// (recordJournaled), so the correction must overwrite explicitly; the
// on-disk journal replays last-record-wins (runstore.LoadAll), so an
// appended record supersedes the wrong one without rewriting the file.
// Runs as a pool audit hook: it takes g.mu but never a pool lock.
func (g *registry) auditReplace(fp string, p *shard.Partial) {
	g.mu.Lock()
	m := g.journaled[fp]
	if m == nil {
		m = map[int]*shard.Partial{}
		g.journaled[fp] = m
	}
	m[p.Index] = p
	store := g.store
	dead := g.dead
	pc := g.partials
	g.mu.Unlock()
	g.log.Warn("audit majority replaced shard result", "campaign", fp12(fp), "shard", p.Index)
	if store != nil && !dead {
		if err := store.Append(fp, p); err != nil {
			g.log.Warn("journal append failed", "campaign", fp12(fp), "shard", p.Index, "err", err)
		}
	}
	if pc != nil && !dead {
		pc.PutPartial(fp, p)
	}
}

// liveSweeps returns the sweeps in submission order plus whether the
// coordinator is drained (something was submitted, everything terminal).
func (g *registry) liveSweeps() (order []*sweepRun, drained bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	order = append(order, g.order...)
	drained = g.submitted
	for _, sr := range g.order {
		if !capi.TerminalState(sr.state) {
			drained = false
		}
	}
	return order, drained
}

// routeCampaign resolves the sweep owning a campaign fingerprint.
func (g *registry) routeCampaign(fp string) (*sweepRun, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	sr, ok := g.byCamp[fp]
	return sr, ok
}

func (g *registry) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", g.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps", g.handleList)
	mux.HandleFunc("GET /v1/sweeps/{fp}", g.handleSweep)
	mux.HandleFunc("GET /v1/sweeps/{fp}/results", g.handleResults)
	mux.HandleFunc("DELETE /v1/sweeps/{fp}", g.handleCancel)
	mux.HandleFunc("POST /v1/lease", g.handleLease)
	mux.HandleFunc("POST /v1/complete", g.handleComplete)
	mux.HandleFunc("POST /v1/shards/fail", g.handleFail)
	mux.HandleFunc("POST /v1/renew", g.handleRenew)
	mux.HandleFunc("POST /v1/workers/{name}/metrics", g.handlePushMetrics)
	if g.lake != nil {
		g.lake.Register(mux)
	}
	if g.obs != nil {
		mux.Handle("GET /metrics", g.obs.Handler())
	}
	if g.fleet != nil {
		mux.Handle("GET /metrics/fleet", g.fleet.Handler())
	}
	return mux
}

func (g *registry) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if g.isDraining() {
		capi.WriteUnavailable(w, time.Second, "coordinator draining; resubmit to its successor")
		return
	}
	var req capi.SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest, "bad submit request: %v", err)
		return
	}
	grid, err := req.Params.Grid()
	if err != nil {
		capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest, "%v", err)
		return
	}
	params, err := json.Marshal(req.Params)
	if err != nil {
		capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest, "%v", err)
		return
	}
	sr, created, err := g.submit(grid, params, nil, false)
	if err != nil {
		capi.WriteError(w, http.StatusConflict, capi.CodeConflict, "%v", err)
		return
	}
	g.mu.Lock()
	reply := capi.SubmitReply{
		Fingerprint: sr.fp,
		Name:        sr.grid.Spec.Name,
		Campaigns:   len(sr.grid.Spec.Items),
		State:       sr.state,
		Created:     created,
	}
	g.mu.Unlock()
	if created {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(reply)
		return
	}
	capi.WriteJSON(w, reply)
}

func (g *registry) handleList(w http.ResponseWriter, r *http.Request) {
	order, _ := g.liveSweeps()
	out := make([]capi.SweepSummary, 0, len(order))
	now := g.now()
	for _, sr := range order {
		pr := sr.pool.Progress(now)
		g.mu.Lock()
		out = append(out, capi.SweepSummary{
			Fingerprint:    sr.fp,
			Name:           sr.grid.Spec.Name,
			State:          sr.state,
			CampaignsTotal: pr.CampaignsTotal,
			CampaignsDone:  pr.CampaignsDone,
		})
		g.mu.Unlock()
	}
	capi.WriteJSON(w, out)
}

// lookup resolves the {fp} path component; a miss writes the 404.
func (g *registry) lookup(w http.ResponseWriter, r *http.Request) (*sweepRun, bool) {
	fp := r.PathValue("fp")
	g.mu.Lock()
	sr, ok := g.sweeps[fp]
	g.mu.Unlock()
	if !ok {
		capi.WriteError(w, http.StatusNotFound, capi.CodeNotFound, "no sweep %.12s; GET /v1/sweeps lists them", fp)
		return nil, false
	}
	return sr, true
}

// status snapshots one sweep as its API status document.
func (g *registry) status(sr *sweepRun) capi.SweepStatus {
	pr := sr.pool.Progress(g.now())
	g.mu.Lock()
	defer g.mu.Unlock()
	return capi.SweepStatus{
		Fingerprint: sr.fp,
		Name:        sr.grid.Spec.Name,
		State:       sr.state,
		Error:       sr.stateMsg,
		Progress:    pr,
		Cost:        g.costOf(sr),
	}
}

// costOf totals a sweep's journaled shard results into its accounting
// block. The journaled map is first-result-wins per shard, so a shard
// that was speculated or completed twice is billed once — the cost is
// the work the sweep's results are actually built from. Nil until any
// shard has landed. Callers hold g.mu.
func (g *registry) costOf(sr *sweepRun) *capi.SweepCost {
	var c capi.SweepCost
	for _, cfp := range sr.cfps {
		for _, p := range g.journaled[cfp] {
			c.Shards++
			c.InjectEvals += p.InjectEvals
			c.InjectWallNS += p.InjectWallNS
			c.RestoreWallNS += p.RestoreWallNS
			c.WarmStarts += p.WarmStarts
			c.PrunedRuns += p.PrunedRuns
			c.DeltaRestores += p.DeltaRestores
		}
	}
	if c.Shards == 0 {
		return nil
	}
	return &c
}

func (g *registry) handleSweep(w http.ResponseWriter, r *http.Request) {
	sr, ok := g.lookup(w, r)
	if !ok {
		return
	}
	if r.URL.Query().Get("watch") == "1" {
		g.watchSweep(w, r, sr)
		return
	}
	capi.WriteJSON(w, g.status(sr))
}

func (g *registry) handleResults(w http.ResponseWriter, r *http.Request) {
	sr, ok := g.lookup(w, r)
	if !ok {
		return
	}
	g.mu.Lock()
	state, msg, rendered := sr.state, sr.stateMsg, sr.rendered
	g.mu.Unlock()
	switch state {
	case capi.StateDone:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(rendered)
	case capi.StateCancelled:
		capi.WriteError(w, http.StatusGone, capi.CodeCancelled, "sweep %.12s was cancelled", sr.fp)
	case capi.StateFailed:
		capi.WriteError(w, http.StatusInternalServerError, capi.CodeFailed, "sweep %.12s failed: %s", sr.fp, msg)
	default:
		capi.WriteError(w, http.StatusConflict, capi.CodePending, "sweep %.12s still running; poll GET /v1/sweeps/%s", sr.fp, sr.fp)
	}
}

// handleCancel cancels a sweep; with ?purge=1 it additionally forgets it:
// the resource leaves the registry (subsequent GETs 404, resubmission
// starts fresh) and its campaigns' journal records are dropped from disk
// before the reply — the eager path of journal compaction.
func (g *registry) handleCancel(w http.ResponseWriter, r *http.Request) {
	sr, ok := g.lookup(w, r)
	if !ok {
		return
	}
	g.cancel(sr)
	st := g.status(sr)
	if r.URL.Query().Get("purge") == "1" {
		g.purge(sr)
	}
	capi.WriteJSON(w, st)
}

func (g *registry) handleLease(w http.ResponseWriter, r *http.Request) {
	if g.isDraining() {
		// Workers' retry loops sleep the hint and knock again — by then the
		// successor (a promoted standby, or nobody) answers on this address.
		capi.WriteUnavailable(w, time.Second, "coordinator draining; retry shortly")
		return
	}
	var req capi.LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest, "bad lease request: %v", err)
		return
	}
	if g.workerQuarantined(req.Worker) {
		capi.WriteError(w, http.StatusForbidden, capi.CodeQuarantined,
			"worker %q is quarantined after repeated audit divergence; its results are not trusted", req.Worker)
		return
	}
	order, drained := g.liveSweeps()
	now := g.now()
	for _, sr := range order {
		if l, ok := sr.pool.Lease(req.Worker, now); ok {
			name := "lease"
			switch {
			case l.Speculative:
				name = "speculated"
			case l.Audit:
				name = "audit"
			}
			g.tracer.Instant(name, "coord", 0, int64(l.Spec.Index), map[string]any{
				"worker": req.Worker, "campaign": fp12(l.Spec.Fingerprint), "shard": l.Spec.Index,
			})
			capi.WriteJSON(w, l)
			return
		}
	}
	if drained {
		// Everything ever submitted is terminal: the coordinator is about
		// to wind down, workers should exit rather than poll.
		w.WriteHeader(http.StatusGone)
		return
	}
	// Idle: everything leased out, later campaigns still building, or no
	// sweeps submitted yet.
	w.WriteHeader(http.StatusNoContent)
}

func (g *registry) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req capi.CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest, "bad completion: %v", err)
		return
	}
	if req.Partial == nil {
		capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest, "completion carries no partial")
		return
	}
	fp := g.resolveFingerprint(req.Fingerprint)
	sr, ok := g.routeCampaign(fp)
	if !ok {
		capi.WriteError(w, http.StatusConflict, capi.CodeConflict, "completion names unknown campaign %.12s", fp)
		return
	}
	if err := sr.pool.Complete(fp, req.LeaseID, req.Epoch, req.Partial, g.now()); err != nil {
		if errors.Is(err, shard.ErrStaleEpoch) {
			// A completion leased by a deposed coordinator for a shard this
			// one already has. The journal offer is harmless — first-wins
			// dedupe drops it when (as always here) the live copy landed
			// first — but the worker learns its lease died with the old
			// epoch, distinctly from an ordinary duplicate.
			g.tracer.Instant("fenced", "coord", 0, int64(req.Partial.Index), map[string]any{
				"campaign": fp12(fp), "shard": req.Partial.Index, "epoch": req.Epoch,
			})
			g.recordJournaled(fp, req.Partial)
			capi.WriteError(w, http.StatusConflict, capi.CodeStaleEpoch, "%v", err)
			return
		}
		if errors.Is(err, shard.ErrIntegrity) {
			// The payload's bytes do not match its own checksum: wire (or
			// worker-side) corruption. The result is refused, never journaled,
			// and the shard is back on the queue for a clean re-execution.
			g.tracer.Instant("integrity_reject", "coord", 0, int64(req.Partial.Index), map[string]any{
				"campaign": fp12(fp), "shard": req.Partial.Index,
			})
			capi.WriteError(w, http.StatusConflict, capi.CodeIntegrityMismatch, "%v", err)
			return
		}
		capi.WriteError(w, http.StatusConflict, capi.CodeConflict, "%v", err)
		return
	}
	g.tracer.Instant("complete", "coord", 0, int64(req.Partial.Index), map[string]any{
		"campaign": fp12(fp), "shard": req.Partial.Index,
	})
	g.recordJournaled(fp, req.Partial)
	w.WriteHeader(http.StatusOK)
}

// handleFail is a worker's typed "this shard crashed me" report: the
// lease is released immediately (no TTL wait) and the shard's attempt
// count moves it toward quarantine — the containment path for poison
// work that panics every executor it lands on.
func (g *registry) handleFail(w http.ResponseWriter, r *http.Request) {
	var req capi.FailRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest, "bad failure report: %v", err)
		return
	}
	fp := g.resolveFingerprint(req.Fingerprint)
	sr, ok := g.routeCampaign(fp)
	if !ok {
		capi.WriteError(w, http.StatusConflict, capi.CodeConflict, "failure report names unknown campaign %.12s", fp)
		return
	}
	if err := sr.pool.Fail(fp, req.LeaseID, req.Reason, g.now()); err != nil {
		capi.WriteError(w, http.StatusConflict, capi.CodeConflict, "%v", err)
		return
	}
	g.tracer.Instant("fail", "coord", 0, 0, map[string]any{
		"campaign": fp12(fp), "worker": req.Worker, "reason": req.Reason,
	})
	g.ping()
	w.WriteHeader(http.StatusOK)
}

func (g *registry) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req capi.RenewRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest, "bad renewal: %v", err)
		return
	}
	fp := g.resolveFingerprint(req.Fingerprint)
	sr, ok := g.routeCampaign(fp)
	if !ok {
		capi.WriteError(w, http.StatusConflict, capi.CodeConflict, "renewal names unknown campaign %.12s", fp)
		return
	}
	exp, err := sr.pool.Renew(fp, req.LeaseID, g.now())
	if err != nil {
		capi.WriteError(w, http.StatusConflict, capi.CodeConflict, "%v", err)
		return
	}
	capi.WriteJSON(w, capi.RenewReply{ExpiresAt: exp})
}

// resolveFingerprint fills in the campaign fingerprint for pre-sweep
// workers that never sent one; with a single self-submitted campaign
// served the routing is unambiguous.
func (g *registry) resolveFingerprint(fp string) string {
	if fp != "" {
		return fp
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.initial != nil && g.initial.single != nil {
		// The single campaign validated at submission; cfps[0] is its
		// fingerprint, computed once there.
		return g.initial.cfps[0]
	}
	return fp
}

// serveOpts is the parsed configuration of one serve run.
type serveOpts struct {
	grid     *sweep.Grid     // self-submitted at startup; nil = start empty
	params   json.RawMessage // declarative params of the self-submitted grid, for journaling
	single   bool            // one-campaign mode: legacy report + result-JSON -out
	shards   int             // per campaign; tiny campaigns degrade to fewer
	journal  string
	lakeDir  string      // artifact-lake directory; "" = lake disabled
	lakeMax  int64       // lake size bound in bytes; 0 = lake.DefaultMaxBytes
	lake     *lake.Store // pre-opened store (tests inject one to chaos-fail it mid-sweep)
	leaseTTL time.Duration
	linger   time.Duration
	outPath  string // single: merged result JSON; sweep: rendered grid text
	outDir   string // sweep: per-campaign result JSON directory

	// Failover knobs (zero values pick the defaults below).
	addr       string        // listen address a promoted standby rebinds
	leaderTTL  time.Duration // leader-lease duration; renewed at a third of it
	drainGrace time.Duration // graceful-drain bound on waiting out leased shards
	specFactor float64       // straggler re-issue factor (0 = pool default, negative = off)

	// Integrity knobs (DESIGN.md "Integrity & quarantine").
	auditFrac   float64 // fraction of completions re-executed on another worker (0 = off)
	maxAttempts int     // executions per shard before it is quarantined as poison (0 = unbounded)

	// Observability (DESIGN.md "Observability"). Instrumentation never
	// feeds back into scheduling or simulation: rendered sweep output is
	// byte-identical with every field below set or unset.
	obsReg    *obs.Registry // metrics registry; nil = serve creates its own
	tracer    *obs.Tracer   // span journal; nil = created iff tracePath is set
	debugAddr string        // pprof + /metrics side server; "" = off
	tracePath string        // Chrome trace_event JSON written on exit; "" = off

	// Warm-standby preloads: a promoted standby hands serve the state it
	// tailed out of the journal instead of having serve re-read the file.
	epoch        uint64                            // pre-acquired leader epoch; 0 = acquire at startup
	preJournaled map[string]map[int]*shard.Partial // replaces runstore.LoadAll
	preSweeps    []runstore.SweepRecord            // replaces runstore.LoadSweeps

	// Control channels; nil channels never fire.
	signals <-chan os.Signal // graceful drain trigger (SIGINT/SIGTERM)
	crash   <-chan struct{}  // test hook: crash-stop as if the process died
}

const (
	leaderSuffix      = ".leader"
	defaultLeaderTTL  = 10 * time.Second
	defaultDrainGrace = 30 * time.Second
)

func runServe(args []string) error {
	fs := flag.NewFlagSet("campaignd serve", flag.ContinueOnError)
	specOf := shard.CampaignFlags(fs)
	paramsOf := sweep.GridParamsFlags(fs)
	addr := fs.String("addr", "127.0.0.1:8372", "listen address")
	shards := fs.Int("shards", 8, "number of shards to split each campaign into")
	journal := fs.String("journal", "", "append-only shard journal, namespaced per campaign; sweeps restarted with the same journal skip finished shards")
	lakeDir := fs.String("lake-dir", "", "content-addressed artifact lake directory: golden builds and finished shard partials are published here and reused fleet-wide and across sweeps; empty disables the lake")
	lakeMax := fs.Int64("lake-max-bytes", 0, "artifact-lake size bound; least-recently-used blobs are evicted past it (0 = 4 GiB default)")
	lease := fs.Duration("lease", 10*time.Minute, "shard lease duration; workers heartbeat at a third of it, so a live shard outrunning the lease is renewed, not re-issued")
	leaderTTL := fs.Duration("leader-lease", defaultLeaderTTL, "leader-lease duration on the journal (renewed at a third of it); a standby takes over once it expires")
	drainGrace := fs.Duration("drain-grace", defaultDrainGrace, "on SIGINT/SIGTERM, how long to wait for leased shards to land before exiting anyway")
	linger := fs.Duration("linger", 3*time.Second, "idle grace: once every submitted sweep is terminal, keep serving this long (new submissions revive the server; pollers observe completion) before exiting")
	speculate := fs.Float64("speculate", sweep.DefaultSpeculateFactor, "straggler re-issue: speculatively back up a leased shard once its age exceeds this multiple of the observed average shard duration and the pool is otherwise idle; 0 disables")
	auditFrac := fs.Float64("audit-frac", 0, "result auditing: re-execute this fraction of completed shards on a different worker and cross-check verdict checksums; divergence is settled by majority vote and outvoted workers are quarantined (0 disables)")
	maxAttempts := fs.Int("max-attempts", shard.DefaultMaxAttempts, "poison-work bound: executions (primary and speculative) a shard may consume before it is quarantined and its sweep failed instead of hung (0 = unbounded)")
	standbyFlag := fs.Bool("standby", false, "warm standby: tail -follow's journal, take over serving when the leader lease expires")
	follow := fs.String("follow", "", "standby: the leader's journal to tail (implies -journal for the takeover)")
	out := fs.String("out", "", "single campaign: write the merged result JSON here; sweep: write the rendered tables here")
	outDir := fs.String("outdir", "", "sweep: write each campaign's merged result JSON into this directory, named by campaign key")
	debugAddr := fs.String("debug-addr", "", "also serve GET /metrics and net/http/pprof on this side address (the API mux serves /metrics regardless)")
	tracePath := fs.String("trace", "", "write the shard-lifecycle span journal as Chrome trace_event JSON to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", *shards)
	}
	if err := positiveDuration("lease", *lease); err != nil {
		return err
	}
	if err := positiveDuration("leader-lease", *leaderTTL); err != nil {
		return err
	}
	if *linger < 0 {
		return fmt.Errorf("-linger must not be negative, got %v", *linger)
	}
	if *auditFrac < 0 || *auditFrac > 1 {
		return fmt.Errorf("-audit-frac must be in [0,1], got %v", *auditFrac)
	}
	if *maxAttempts < 0 {
		return fmt.Errorf("-max-attempts must not be negative, got %d", *maxAttempts)
	}
	params, isSweep, err := paramsOf()
	if err != nil {
		return err
	}
	// A campaign flag set explicitly means the classic single-campaign
	// batch mode; no campaign or sweep flags at all means an empty,
	// long-lived service that waits for POST /v1/sweeps submissions.
	single := false
	fs.Visit(func(f *flag.Flag) {
		if shard.CampaignFlagNames[f.Name] {
			single = true
		}
	})
	opts := serveOpts{
		single:      single,
		shards:      *shards,
		journal:     *journal,
		lakeDir:     *lakeDir,
		lakeMax:     *lakeMax,
		leaseTTL:    *lease,
		leaderTTL:   *leaderTTL,
		drainGrace:  *drainGrace,
		specFactor:  *speculate,
		auditFrac:   *auditFrac,
		maxAttempts: *maxAttempts,
		linger:      *linger,
		outPath:     *out,
		outDir:      *outDir,
		addr:        *addr,
		debugAddr:   *debugAddr,
		tracePath:   *tracePath,
	}
	if *speculate <= 0 {
		opts.specFactor = -1 // explicit off; serveOpts zero means "pool default"
	}
	// SIGINT/SIGTERM drain gracefully: stop leasing, wait (bounded by
	// -drain-grace) for leased shards to land, release leadership, exit 0.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	opts.signals = sigCh

	if *standbyFlag {
		if *follow == "" {
			return fmt.Errorf("-standby requires -follow JOURNAL")
		}
		if single || isSweep {
			return fmt.Errorf("-standby takes no campaign or sweep flags; the registry is rebuilt from the journal")
		}
		opts.journal = *follow
		return standby(opts, os.Stdout)
	}

	switch {
	case isSweep:
		grid, err := params.Grid()
		if err != nil {
			return err
		}
		opts.grid = &grid
		if opts.params, err = json.Marshal(params); err != nil {
			return err
		}
	case single:
		cs, err := specOf()
		if err != nil {
			return err
		}
		grid := singleCampaignGrid(cs)
		opts.grid = &grid
	}
	if *outDir != "" {
		// Create it now: failing after the fleet has simulated for
		// minutes would lose the sweep's in-flight work.
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("-outdir: %v", err)
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	return serve(opts, ln, os.Stdout)
}

// singleCampaignGrid wraps one campaign as a degenerate sweep whose
// rendered artifact is the classic campaign report.
func singleCampaignGrid(cs shard.CampaignSpec) sweep.Grid {
	it := sweep.Item{Key: fmt.Sprintf("soc%d-%s", cs.SoC, cs.Workload), Campaign: cs}
	return sweep.Grid{
		Spec: sweep.SweepSpec{Name: "campaign", Items: []sweep.Item{it}},
		Render: func(w io.Writer, results map[string]*inject.Result) error {
			fp, err := cs.Fingerprint()
			if err != nil {
				return err
			}
			r, ok := results[fp]
			if !ok {
				return fmt.Errorf("campaign %.12s has no merged result", fp)
			}
			fmt.Fprint(w, r.String())
			return nil
		},
	}
}

// syncWriter serializes progress lines: sweep run goroutines and their
// campaign builders all narrate to the same writer.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// serve runs the coordinator on an accepted listener. Sweeps arrive as
// POST /v1/sweeps submissions or as the one self-submission opts.grid
// describes; each drives itself to a terminal state. serve exits once
// the registry is idle — at least one sweep was submitted and all are
// terminal — and stays idle through the -linger grace window (new
// submissions revive it; lingering also lets polling workers observe
// the 410 drained signal instead of a dead socket). Split from runServe
// so the end-to-end tests can drive it on an ephemeral port.
func serve(opts serveOpts, ln net.Listener, rawStdout io.Writer) error {
	stdout := &syncWriter{w: rawStdout}
	if opts.leaderTTL <= 0 {
		opts.leaderTTL = defaultLeaderTTL
	}
	if opts.drainGrace <= 0 {
		opts.drainGrace = defaultDrainGrace
	}

	// Observability: serve always has a registry (GET /metrics is part of
	// the API surface); the tracer only exists when someone will read it.
	reg := opts.obsReg
	if reg == nil {
		reg = obs.NewRegistry()
	}
	tracer := opts.tracer
	if tracer == nil && opts.tracePath != "" {
		tracer = obs.NewTracer()
	}
	rm := runstore.NewMetrics(reg)

	var store *runstore.Store
	journaled := opts.preJournaled
	preSweeps := opts.preSweeps
	droppedRecords := 0
	var err error
	if opts.journal != "" {
		if journaled == nil {
			if journaled, droppedRecords, err = runstore.LoadAll(opts.journal); err != nil {
				return err
			}
			if preSweeps, err = runstore.LoadSweeps(opts.journal); err != nil {
				return err
			}
		}
		if store, err = runstore.Open(opts.journal); err != nil {
			return err
		}
		store.SetMetrics(rm)
		defer store.Close()
	}
	if journaled == nil {
		journaled = map[string]map[int]*shard.Partial{}
	}

	// Leadership: with a journal, serve runs under a fenced epoch recorded
	// in the journal's .leader file and stamped on every lease. A promoted
	// standby arrives with its epoch pre-acquired (opts.epoch); a fresh
	// leader claims the file's epoch + 1.
	epoch := opts.epoch
	var leaderPath string
	deposed := make(chan struct{})
	stopLeader := func() {}
	if opts.journal != "" {
		leaderPath = opts.journal + leaderSuffix
		if epoch == 0 {
			prev, err := runstore.ReadLeaderLease(leaderPath)
			if err != nil {
				return err
			}
			if prev.Epoch > 0 && !prev.Expired(time.Now()) {
				return fmt.Errorf("journal %s is led by %s (epoch %d) until %s; use -standby to take over on expiry",
					opts.journal, prev.Owner, prev.Epoch, prev.ExpiresAt.Format(time.RFC3339))
			}
			epoch = prev.Epoch + 1
		}
		me := runstore.LeaderLease{
			Epoch:     epoch,
			Owner:     defaultWorkerName(),
			Addr:      ln.Addr().String(),
			ExpiresAt: time.Now().Add(opts.leaderTTL),
		}
		if err := runstore.WriteLeaderLease(leaderPath, me); err != nil {
			return err
		}
		rm.LeaderEpoch.Set(float64(epoch))
		stopLeader = startLeaderRenewal(leaderPath, me, opts.leaderTTL, rm, deposed)
		defer stopLeader()
	}

	g := newRegistry(opts, epoch, store, journaled, stdout)
	g.obs, g.sm, g.tracer = reg, shard.NewMetrics(reg), tracer
	g.fleet = obs.NewFleet(0)
	g.fleet.SetQuarantined(g.quarantinedWorkerCount)
	if droppedRecords > 0 {
		g.log.Warn("journal records failed their integrity checksum and were skipped; those shards re-simulate",
			"journal", opts.journal, "dropped", droppedRecords)
	}

	// Artifact lake: golden builds and finished partials become durable,
	// fleet-wide, cross-sweep cache objects. Strictly an accelerator — the
	// registry's build and merge paths fall back to local computation on
	// any lake error, so rendered output is byte-identical with the lake
	// on, off, or failing mid-sweep.
	lakeStore := opts.lake
	if lakeStore == nil && opts.lakeDir != "" {
		if lakeStore, err = lake.Open(opts.lakeDir, opts.lakeMax); err != nil {
			return err
		}
	}
	if lakeStore != nil {
		lakeStore.SetMetrics(lake.NewMetrics(reg))
		g.lake = lakeStore
		g.builder = lake.NewStoreBuilder(lakeStore, defaultWorkerName())
		g.partials = lake.NewStorePartials(lakeStore)
		g.log.Info("artifact lake attached", "dir", lakeStore.Dir(), "bytes", lakeStore.Bytes())
	}
	if opts.tracePath != "" {
		defer func() {
			if err := tracer.WriteFile(opts.tracePath); err != nil {
				g.log.Warn("trace write failed", "path", opts.tracePath, "err", err)
			}
		}()
	}
	if opts.debugAddr != "" {
		dbgAddr, stopDebug, err := startDebugServer(opts.debugAddr, reg)
		if err != nil {
			return err
		}
		defer stopDebug()
		g.log.Info("debug server listening", "addr", dbgAddr)
	}
	g.log.Info("serving", "addr", ln.Addr().String(), "lease", opts.leaseTTL, "shards", opts.shards)

	srv := &http.Server{Handler: g.mux()}
	defer srv.Close()
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.Serve(ln) }()

	if opts.grid != nil {
		var single *shard.CampaignSpec
		if opts.single {
			single = &opts.grid.Spec.Items[0].Campaign
		}
		if _, _, err := g.submit(*opts.grid, opts.params, single, true); err != nil {
			return err
		}
	}
	// Resubmit journaled running sweeps — the registry a dead leader left
	// behind. Idempotent against the self-submission above, so a restart
	// on the same flags keeps its batch-job surface.
	for _, rec := range preSweeps {
		if rec.State != runstore.SweepStateRunning {
			continue
		}
		grid, single, err := gridFromRecord(rec)
		if err != nil {
			// An unreadable registry record must not sink the sweeps that do
			// decode: serve what can be served, say what cannot.
			g.log.Warn("journaled sweep not rebuilt", "fp", fp12(rec.Fingerprint), "err", err)
			continue
		}
		if _, _, err := g.submit(grid, rec.Params, single, false); err != nil {
			g.log.Warn("journaled sweep not rebuilt", "fp", fp12(rec.Fingerprint), "err", err)
		}
	}

	// crashStop tears down as an abruptly dead process would: no drain, no
	// journal writes, and — critically — no leader-lease release, so the
	// takeover clock a standby watches runs out for real.
	crashStop := func(reason string) error {
		g.markDead()
		stopLeader()
		srv.Close()
		return fmt.Errorf("crash-stopped: %s", reason)
	}

	// Serve until idle (every submitted sweep terminal and the linger
	// window passed without a new submission), or until a drain signal or
	// crash ends the run early.
	draining := false
	var drainDeadline <-chan time.Time
	drainPoll := time.NewTicker(100 * time.Millisecond)
	defer drainPoll.Stop()
	startDrain := func(why string) {
		draining = true
		g.setDraining()
		drainDeadline = time.After(opts.drainGrace)
		g.log.Info("draining", "why", why, "leased", g.leasedShards(), "grace", opts.drainGrace)
	}
loop:
	for {
		if draining {
			if g.leasedShards() == 0 {
				break
			}
			select {
			case <-drainPoll.C:
			case <-drainDeadline:
				g.log.Warn("drain grace expired; exiting anyway", "leased", g.leasedShards())
				break loop
			case <-opts.crash:
				return crashStop("test crash hook")
			case <-deposed:
				return crashStop("deposed: a newer epoch holds the leader lease")
			case err := <-srvErr:
				return fmt.Errorf("serving: %v", err)
			}
			continue
		}
		if g.idle() {
			select {
			case <-g.changed:
				continue
			case err := <-srvErr:
				return fmt.Errorf("serving: %v", err)
			case sig := <-opts.signals:
				startDrain(sig.String() + " received")
				continue
			case <-opts.crash:
				return crashStop("test crash hook")
			case <-deposed:
				return crashStop("deposed: a newer epoch holds the leader lease")
			case <-time.After(opts.linger):
				if !g.idle() {
					continue
				}
			}
			break
		}
		select {
		case <-g.changed:
		case err := <-srvErr:
			return fmt.Errorf("serving: %v", err)
		case sig := <-opts.signals:
			startDrain(sig.String() + " received")
		case <-opts.crash:
			return crashStop("test crash hook")
		case <-deposed:
			return crashStop("deposed: a newer epoch holds the leader lease")
		}
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		g.log.Warn("shutdown", "err", err)
	}
	if leaderPath != "" {
		// A clean exit hands leadership over immediately: rewrite the lease
		// already expired so a standby needn't wait out the TTL. Addr stays:
		// the promoted standby inherits it, so workers keep their URL across
		// planned restarts too, not just crashes.
		stopLeader()
		release := runstore.LeaderLease{Epoch: epoch, Owner: defaultWorkerName(), Addr: ln.Addr().String(), ExpiresAt: time.Now()}
		if err := runstore.WriteLeaderLease(leaderPath, release); err != nil {
			g.log.Warn("leader lease release failed", "err", err)
		}
	}
	if draining {
		g.log.Info("drained; leadership released")
	}

	// The self-submitted sweep is the batch job serve was asked to run;
	// its failure is serve's failure. Submitted sweeps report theirs
	// through the API instead.
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.initial != nil && g.initial.state == capi.StateFailed {
		return errors.New(g.initial.stateMsg)
	}
	return nil
}

// startLeaderRenewal heartbeats the leader lease at a third of its TTL.
// Each tick first reads the file: a higher epoch there means a standby
// (correctly, per the expiry this leader let happen) took over — the
// deposed channel closes and this incarnation must crash-stop, never
// write again. Successful heartbeats drive runstore_leader_renewals_total
// and refresh runstore_leader_epoch. The returned stop is idempotent.
func startLeaderRenewal(path string, me runstore.LeaderLease, ttl time.Duration, m *runstore.Metrics, deposed chan<- struct{}) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	interval := ttl / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				cur, err := runstore.ReadLeaderLease(path)
				if err == nil && cur.Epoch > me.Epoch {
					close(deposed)
					return
				}
				me.ExpiresAt = time.Now().Add(ttl)
				if err := runstore.WriteLeaderLease(path, me); err != nil {
					fmt.Fprintln(os.Stderr, "campaignd: leader lease renewal:", err)
				} else if m != nil {
					m.LeaderRenewals.Inc()
					m.LeaderEpoch.Set(float64(me.Epoch))
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// gridFromRecord rebuilds a submitted sweep from its journal record —
// the declarative params an API submission carried, or the single
// campaign spec of a -soc self-submission.
func gridFromRecord(rec runstore.SweepRecord) (sweep.Grid, *shard.CampaignSpec, error) {
	if rec.Single != nil {
		cs := *rec.Single
		return singleCampaignGrid(cs), &cs, nil
	}
	if len(rec.Params) == 0 {
		return sweep.Grid{}, nil, fmt.Errorf("sweep record carries neither params nor a campaign spec")
	}
	var params sweep.GridParams
	if err := json.Unmarshal(rec.Params, &params); err != nil {
		return sweep.Grid{}, nil, err
	}
	grid, err := params.Grid()
	return grid, nil, err
}

// standby tails a leader's journal, mirroring the shard results and
// sweep registry as they land, and takes over the moment the leader
// lease expires: it bumps the epoch (fencing the old leader's leases),
// rebinds the leader's address, and serves the journal's sweeps exactly
// where the dead leader left them — journaled shards restore, only the
// remainder is ever simulated again.
func standby(opts serveOpts, rawStdout io.Writer) error {
	stdout := &syncWriter{w: rawStdout}
	logger := newLogger(stdout)
	if opts.leaderTTL <= 0 {
		opts.leaderTTL = defaultLeaderTTL
	}
	leaderPath := opts.journal + leaderSuffix
	tail := runstore.NewTail(opts.journal)
	defer tail.Close()

	// The standby shares one registry with the serve it may become, so a
	// scraper watching the promoted coordinator sees the follower history
	// too. While following, its replication lag is the metric that matters.
	if opts.obsReg == nil {
		opts.obsReg = obs.NewRegistry()
	}
	opts.obsReg.NewGaugeFunc("runstore_tail_lag_bytes",
		"Bytes of leader journal the standby's tail has not applied yet.",
		func() float64 { return float64(tail.Lag()) })
	if opts.debugAddr != "" {
		// The debug server outlives the takeover: serve is handed
		// debugAddr="" so it does not fight for the same port.
		dbgAddr, stopDebug, err := startDebugServer(opts.debugAddr, opts.obsReg)
		if err != nil {
			return err
		}
		defer stopDebug()
		opts.debugAddr = ""
		logger.Info("debug server listening", "addr", dbgAddr)
	}

	journaled := map[string]map[int]*shard.Partial{}
	sweeps := map[string]runstore.SweepRecord{}
	var order []string
	apply := func(rec runstore.Record) {
		switch {
		case rec.Sweep != nil:
			if _, seen := sweeps[rec.Sweep.Fingerprint]; !seen {
				order = append(order, rec.Sweep.Fingerprint)
			}
			sweeps[rec.Sweep.Fingerprint] = *rec.Sweep
		case rec.Partial != nil:
			if rec.Partial.Verify() != nil {
				// A record whose payload fails its own checksum must never
				// restore: drop it here and the shard re-simulates after
				// takeover, exactly as runstore.LoadAll would have decided.
				return
			}
			m := journaled[rec.Fingerprint]
			if m == nil {
				m = map[int]*shard.Partial{}
				journaled[rec.Fingerprint] = m
			}
			// Last record wins, mirroring runstore.LoadAll: the journal holds
			// one record per shard except when an audit correction was
			// appended after the original — the correction must supersede.
			m[rec.Partial.Index] = rec.Partial
		case len(rec.Terminal) > 0:
			for _, fp := range rec.Terminal {
				delete(journaled, fp)
			}
		}
	}
	// drainTail applies everything currently readable. A journal
	// replacement (the leader compacting) resets the derived state and
	// replays — replaying is idempotent because apply is deterministic
	// in record order.
	drainTail := func() error {
		for {
			rec, ev, err := tail.Next()
			if err != nil {
				return err
			}
			switch ev {
			case runstore.TailRecord:
				apply(rec)
			case runstore.TailReset:
				journaled = map[string]map[int]*shard.Partial{}
				sweeps = map[string]runstore.SweepRecord{}
				order = nil
			case runstore.TailCaughtUp:
				return nil
			}
		}
	}

	poll := opts.leaderTTL / 4
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	logger.Info("standby following", "journal", opts.journal, "leaderLease", opts.leaderTTL)
	announced := uint64(0)
	var lease runstore.LeaderLease
	for {
		if err := drainTail(); err != nil {
			return err
		}
		var err error
		if lease, err = runstore.ReadLeaderLease(leaderPath); err != nil {
			return err
		}
		// Epoch 0 means no leader has ever led this journal; a standby
		// follows, it does not found. Wait for a leader to appear.
		if lease.Epoch > 0 && lease.Expired(time.Now()) {
			break
		}
		if lease.Epoch != announced {
			logger.Info("standby following leader", "owner", lease.Owner, "epoch", lease.Epoch, "addr", lease.Addr)
			announced = lease.Epoch
		}
		select {
		case <-time.After(poll):
		case sig := <-opts.signals:
			logger.Info("standby exiting without taking over", "signal", sig.String())
			return nil
		}
	}

	// Take over. Claim the fenced epoch first — a zombie leader's next
	// renewal tick reads it and crash-stops — then drain the last records
	// it flushed, then fight it for the socket.
	epoch := lease.Epoch + 1
	addr := opts.addr
	if lease.Addr != "" {
		addr = lease.Addr
	}
	me := runstore.LeaderLease{
		Epoch:     epoch,
		Owner:     defaultWorkerName(),
		Addr:      addr,
		ExpiresAt: time.Now().Add(opts.leaderTTL),
	}
	if err := runstore.WriteLeaderLease(leaderPath, me); err != nil {
		return err
	}
	if err := drainTail(); err != nil {
		return err
	}
	tail.Close()

	// The dead leader's socket may linger (its process dying slowly, or a
	// zombie that has not yet noticed the fence); keep trying the bind.
	var ln net.Listener
	var err error
	bindDeadline := time.Now().Add(10 * opts.leaderTTL)
	for {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		if time.Now().After(bindDeadline) {
			return fmt.Errorf("standby takeover: %s never freed: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	nShards := 0
	for _, m := range journaled {
		nShards += len(m)
	}
	logger.Info("standby taking over", "expiredEpoch", lease.Epoch, "epoch", epoch, "addr", addr,
		"sweeps", len(order), "journaledShards", nShards)

	// The follower's lag gauge dies with the tail; the promoted serve
	// re-registers the runstore family over the shared registry.
	opts.obsReg.Unregister("runstore_tail_lag_bytes")

	takeover := opts
	takeover.grid = nil
	takeover.params = nil
	takeover.single = false
	takeover.epoch = epoch
	takeover.preJournaled = journaled
	takeover.preSweeps = nil
	for _, fp := range order {
		takeover.preSweeps = append(takeover.preSweeps, sweeps[fp])
	}
	return serve(takeover, ln, rawStdout)
}

func writeResultJSON(path string, res *inject.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return res.WriteJSON(f)
}
