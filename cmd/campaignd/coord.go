package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/capi"
	"repro/internal/inject"
	"repro/internal/runstore"
	"repro/internal/shard"
	"repro/internal/sweep"
)

// The coordinator is a long-lived, multi-sweep service: sweeps are
// resources, submitted, watched and cancelled over the versioned API
// documented in internal/capi. Any number of sweeps are live at once;
// lease/complete/renew route across all of them (completions and
// renewals by campaign fingerprint — the durable key a worker always
// holds, because an expired lease ID is forgotten by the pool), and
// each sweep builds, drains, merges and renders independently. The
// -sweep/-soc flags are nothing special anymore: they are a
// self-submission performed at startup, exactly equivalent to POSTing
// the same grid to /v1/sweeps.

// progressReply is the deprecated GET /v1/progress shape, kept for one
// release as an alias of GET /v1/sweeps/{fp} on the first-submitted
// sweep. The legacy top-level fields describe the campaign when that
// sweep is a single campaign.
type progressReply struct {
	Fingerprint string              `json:"fingerprint"`
	Design      int                 `json:"soc"`
	Progress    shard.Progress      `json:"progress"`
	Done        bool                `json:"done"`
	Sweep       sweep.SweepProgress `json:"sweep"`
}

// errCancelled is drive's internal "the sweep was cancelled" signal.
var errCancelled = errors.New("sweep cancelled")

// sweepRun is one sweep resource: its grid, its lease pool, its
// lifecycle state, and — once done — its rendered output.
type sweepRun struct {
	fp     string
	grid   sweep.Grid
	pool   *sweep.Pool
	single *shard.CampaignSpec // set when the sweep is one -soc campaign
	seq    int                 // submission order, for lease routing

	state    string // capi.State*
	stateMsg string // failure detail when state is failed
	rendered []byte // the grid's rendered artifact, set when done

	stop     chan struct{} // closed on cancel; ends the build/merge loops
	stopOnce sync.Once
	finished chan struct{} // closed when the run goroutine exits
}

// registry is the coordinator's sweep table plus everything the
// handlers share: the journal, the clock, and the change signal the
// serve loop blocks on.
type registry struct {
	mu        sync.Mutex
	sweeps    map[string]*sweepRun // by sweep fingerprint
	order     []*sweepRun          // submission order
	byCamp    map[string]*sweepRun // campaign fingerprint -> owning sweep
	journaled map[string]map[int]*shard.Partial
	store     *runstore.Store // nil = no journal
	shards    int
	ttl       time.Duration
	seq       int
	now       func() time.Time
	stdout    *syncWriter
	initial   *sweepRun // the self-submitted sweep, if any
	outPath   string    // initial sweep's rendered-output file
	outDir    string    // initial sweep's per-campaign JSON directory
	single    bool      // initial sweep is one -soc campaign
	submitted bool      // a sweep was ever submitted (survives purges)
	changed   chan struct{}
}

func newRegistry(opts serveOpts, store *runstore.Store, journaled map[string]map[int]*shard.Partial, stdout *syncWriter) *registry {
	return &registry{
		sweeps:    map[string]*sweepRun{},
		byCamp:    map[string]*sweepRun{},
		journaled: journaled,
		store:     store,
		shards:    opts.shards,
		ttl:       opts.leaseTTL,
		now:       time.Now,
		stdout:    stdout,
		outPath:   opts.outPath,
		outDir:    opts.outDir,
		single:    opts.single,
		changed:   make(chan struct{}, 1),
	}
}

// ping nudges the serve loop after any submission or terminal
// transition; the buffered channel coalesces bursts.
func (g *registry) ping() {
	select {
	case g.changed <- struct{}{}:
	default:
	}
}

// idle reports whether the coordinator has nothing left to serve: at
// least one sweep was ever submitted and all still-registered ones are
// terminal (a purged sweep leaves the registry but still counts as having
// been served).
func (g *registry) idle() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.submitted {
		return false
	}
	for _, sr := range g.order {
		if !capi.TerminalState(sr.state) {
			return false
		}
	}
	return true
}

// submit registers a sweep and starts its run goroutine. Submission is
// idempotent on the sweep fingerprint: a live or done duplicate returns
// the existing resource; a cancelled or failed one is replaced by a
// fresh run (journaled shards — including those a cancelled run's
// workers delivered mid-flight — restore on open, so re-submission
// resumes rather than re-simulates). Grids overlapping a live sweep's
// campaigns are refused: completions route by campaign fingerprint, and
// two live owners would make that routing ambiguous.
func (g *registry) submit(grid sweep.Grid, single *shard.CampaignSpec, initial bool) (*sweepRun, bool, error) {
	fp := grid.Spec.Fingerprint()
	pool, err := sweep.NewPool(grid.Spec, g.ttl)
	if err != nil {
		return nil, false, err
	}
	g.mu.Lock()
	if prev, ok := g.sweeps[fp]; ok && (prev.state == capi.StateRunning || prev.state == capi.StateDone) {
		g.mu.Unlock()
		return prev, false, nil
	}
	// Refuse overlap with other live sweeps before touching any existing
	// registration: a refused resubmission must leave the cancelled/failed
	// incarnation intact as a resource.
	for _, it := range grid.Spec.Items {
		cfp := it.Campaign.Fingerprint()
		if owner, ok := g.byCamp[cfp]; ok && !capi.TerminalState(owner.state) && owner.fp != fp {
			g.mu.Unlock()
			return nil, false, fmt.Errorf("campaign %q (%.12s) already belongs to live sweep %.12s", it.Key, cfp, owner.fp)
		}
	}
	if prev, ok := g.sweeps[fp]; ok {
		// Replace the cancelled/failed incarnation in submission order.
		for i, sr := range g.order {
			if sr == prev {
				g.order = append(g.order[:i], g.order[i+1:]...)
				break
			}
		}
		delete(g.sweeps, fp)
	}
	g.seq++
	sr := &sweepRun{
		fp:       fp,
		grid:     grid,
		pool:     pool,
		single:   single,
		seq:      g.seq,
		state:    capi.StateRunning,
		stop:     make(chan struct{}),
		finished: make(chan struct{}),
	}
	g.sweeps[fp] = sr
	g.order = append(g.order, sr)
	g.submitted = true
	for _, it := range grid.Spec.Items {
		g.byCamp[it.Campaign.Fingerprint()] = sr
	}
	if initial {
		g.initial = sr
	}
	g.mu.Unlock()
	g.ping()
	fmt.Fprintf(g.stdout, "campaignd: sweep %s (%.12s) submitted: %d campaigns, %d shards each\n",
		grid.Spec.Name, fp, len(grid.Spec.Items), g.shards)
	go g.run(sr)
	return sr, true, nil
}

// cancel transitions a live sweep to cancelled: its pool stops leasing,
// its build/merge loops stop, leased shards finish (their completions
// are still accepted and journaled) or expire. Cancelling a terminal
// sweep is a no-op returning its state.
func (g *registry) cancel(sr *sweepRun) string {
	g.mu.Lock()
	if capi.TerminalState(sr.state) {
		state := sr.state
		g.mu.Unlock()
		return state
	}
	sr.state = capi.StateCancelled
	g.mu.Unlock()
	sr.pool.Cancel()
	sr.stopOnce.Do(func() { close(sr.stop) })
	g.ping()
	fmt.Fprintf(g.stdout, "campaignd: sweep %s (%.12s) cancelled\n", sr.grid.Spec.Name, sr.fp)
	return capi.StateCancelled
}

// run drives one sweep to a terminal state.
func (g *registry) run(sr *sweepRun) {
	defer close(sr.finished)
	err := g.drive(sr)
	g.mu.Lock()
	switch {
	case sr.state == capi.StateCancelled || errors.Is(err, errCancelled):
		sr.state = capi.StateCancelled
	case err != nil:
		sr.state = capi.StateFailed
		sr.stateMsg = err.Error()
	default:
		sr.state = capi.StateDone
	}
	state := sr.state
	g.mu.Unlock()
	if state == capi.StateDone && sr != g.initialSweep() {
		// An API-submitted sweep that merged and rendered has delivered:
		// its results travel over GET /v1/sweeps/{fp}/results, and the
		// journaled shards' only remaining use is speeding up an identical
		// resubmission. Mark them terminal so the next Open compacts them
		// away — a long-lived coordinator's journal stays proportional to
		// its live work, not its history. (The in-memory view keeps them,
		// so a same-process resubmission still answers instantly.) The
		// self-submitted batch-job sweep is exempt: its journal IS its
		// recovery artifact — a coordinator re-run on the same flags and
		// journal must merge and render without simulating anything, which
		// TestServeWorkEndToEnd/TestServeSweepEndToEnd pin.
		g.markJournalTerminal(sr)
	}
	if state == capi.StateFailed {
		// A failed sweep will never merge: stop its builder and refuse its
		// pending shards to the fleet, exactly as a cancel does — workers
		// must not burn hours on shards routed into a dead resource.
		sr.pool.Cancel()
		sr.stopOnce.Do(func() { close(sr.stop) })
		fmt.Fprintf(g.stdout, "campaignd: sweep %s (%.12s) failed: %v\n", sr.grid.Spec.Name, sr.fp, err)
	}
	g.ping()
}

// drive builds and opens the sweep's campaigns incrementally (workers
// drain earlier campaigns while later ones build), merges each campaign
// the moment its last shard lands, and renders the grid once every
// campaign is merged. It returns errCancelled when the sweep is
// cancelled mid-flight.
func (g *registry) drive(sr *sweepRun) error {
	items := sr.grid.Spec.Items

	var mu sync.Mutex
	builts := make([]*shard.Built, len(items))
	buildErr := make(chan error, 1)
	go func() {
		for i, it := range items {
			select {
			case <-sr.stop:
				return
			default:
			}
			b, err := shard.Build(it.Campaign)
			if err != nil {
				buildErr <- fmt.Errorf("building campaign %q: %v", it.Key, err)
				return
			}
			// A sweep's one -shards knob covers campaigns of very different
			// sizes, so tiny campaigns degrade to fewer shards; a single
			// campaign keeps the strict fail-fast validation socfault has.
			var specs []shard.Spec
			if sr.single != nil {
				specs, err = shard.Plan(it.Campaign, g.shards, len(b.Jobs))
			} else {
				specs, err = shard.PlanAtMost(it.Campaign, g.shards, len(b.Jobs))
			}
			if err != nil {
				buildErr <- fmt.Errorf("planning campaign %q: %v", it.Key, err)
				return
			}
			mu.Lock()
			builts[i] = b
			mu.Unlock()
			select {
			case <-sr.stop:
				return
			default:
			}
			nJournaled, err := sr.pool.Open(i, specs, g.journaledFor(b.Fingerprint))
			if err != nil {
				buildErr <- err
				return
			}
			fmt.Fprintf(g.stdout, "campaignd: campaign %s (%.12s, SoC%d/%s on %s): %d injections in %d shards, %d journaled\n",
				it.Key, b.Fingerprint, it.Campaign.SoC, it.Campaign.Workload, it.Campaign.Engine, len(b.Jobs), len(specs), nJournaled)
		}
	}()

	results := make(map[string]*inject.Result, len(items))
	for merged := 0; merged < len(items); {
		select {
		case idx := <-sr.pool.Completed():
			mu.Lock()
			b := builts[idx]
			builts[idx] = nil
			mu.Unlock()
			res, err := shard.Merge(b, sr.pool.Partials(idx))
			if err != nil {
				return fmt.Errorf("merging campaign %q: %v", items[idx].Key, err)
			}
			results[b.Fingerprint] = res
			merged++
			fmt.Fprintf(g.stdout, "campaignd: campaign %s (%.12s) merged: %d injections, %d/%d campaigns done\n",
				items[idx].Key, b.Fingerprint, len(res.Injections), merged, len(items))
			if sr == g.initial && g.outDir != "" {
				if err := writeResultJSON(filepath.Join(g.outDir, items[idx].Key+".json"), res); err != nil {
					return err
				}
			}
		case err := <-buildErr:
			return err
		case <-sr.stop:
			return errCancelled
		}
	}

	// Sweep-level aggregation: the merged results feed the grid's ssresf
	// renderer, bit-identical to the in-process experiment drivers.
	var rendered bytes.Buffer
	if err := sr.grid.Render(&rendered, results); err != nil {
		return err
	}
	g.mu.Lock()
	sr.rendered = rendered.Bytes()
	g.mu.Unlock()
	if sr == g.initial {
		// The self-submitted sweep keeps the batch-job surface: rendered
		// output on stdout and in -out, per-campaign JSONs in -outdir.
		if _, err := g.stdout.Write(rendered.Bytes()); err != nil {
			return err
		}
		if g.outPath != "" {
			if g.single {
				return writeResultJSON(g.outPath, results[items[0].Campaign.Fingerprint()])
			}
			return os.WriteFile(g.outPath, rendered.Bytes(), 0o644)
		}
	} else {
		fmt.Fprintf(g.stdout, "campaignd: sweep %s (%.12s) done: results at /v1/sweeps/%s/results\n",
			sr.grid.Spec.Name, sr.fp, sr.fp)
	}
	return nil
}

// campaignFingerprints lists one sweep's campaign fingerprints.
func campaignFingerprints(sr *sweepRun) []string {
	fps := make([]string, 0, len(sr.grid.Spec.Items))
	for _, it := range sr.grid.Spec.Items {
		fps = append(fps, it.Campaign.Fingerprint())
	}
	return fps
}

// initialSweep returns the self-submitted sweep, if any.
func (g *registry) initialSweep() *sweepRun {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.initial
}

// droppableFingerprints returns the subset of sr's campaign fingerprints
// whose journal records may be marked dead on sr's behalf: campaigns
// another sweep has since taken over are its resumability now, and the
// self-submitted initial sweep's campaigns are never droppable — its
// journal is its recovery artifact, and a later API sweep sharing a
// campaign (possible once the initial sweep is terminal) must not
// invalidate it. Callers hold g.mu.
func (g *registry) droppableFingerprints(sr *sweepRun) []string {
	protected := map[string]bool{}
	if g.initial != nil && g.initial != sr {
		for _, cfp := range campaignFingerprints(g.initial) {
			protected[cfp] = true
		}
	}
	var fps []string
	for _, cfp := range campaignFingerprints(sr) {
		if owner, ok := g.byCamp[cfp]; ok && owner != sr {
			continue
		}
		if protected[cfp] {
			continue
		}
		fps = append(fps, cfp)
	}
	return fps
}

// markJournalTerminal appends a terminal marker for the sweep's
// droppable campaigns.
func (g *registry) markJournalTerminal(sr *sweepRun) {
	g.mu.Lock()
	store := g.store
	fps := g.droppableFingerprints(sr)
	g.mu.Unlock()
	if store == nil || len(fps) == 0 {
		return
	}
	if err := store.MarkTerminal(fps); err != nil {
		// Only journal hygiene is lost; the records stay loadable.
		fmt.Fprintln(os.Stderr, "campaignd: journal terminal marker:", err)
	}
}

// purge removes a (terminal) sweep from the registry and eagerly drops
// its droppable campaigns' journal records: later completions for it are
// refused, GETs 404, and a resubmission starts from a clean slate.
// Campaigns another sweep has taken over — or shared with the exempt
// initial sweep — are left alone (see droppableFingerprints).
func (g *registry) purge(sr *sweepRun) {
	g.mu.Lock()
	delete(g.sweeps, sr.fp)
	for i, got := range g.order {
		if got == sr {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	// Journal state is the narrow set (droppable only); routing is the
	// wide one — every campaign this sweep still owns stops resolving to
	// the removed resource.
	fps := g.droppableFingerprints(sr)
	for _, cfp := range fps {
		delete(g.journaled, cfp)
	}
	for _, cfp := range campaignFingerprints(sr) {
		if g.byCamp[cfp] == sr {
			delete(g.byCamp, cfp)
		}
	}
	store := g.store
	g.mu.Unlock()
	if store != nil {
		if err := store.Purge(fps); err != nil {
			fmt.Fprintln(os.Stderr, "campaignd: journal purge:", err)
		}
	}
	g.ping()
	fmt.Fprintf(g.stdout, "campaignd: sweep %s (%.12s) purged\n", sr.grid.Spec.Name, sr.fp)
}

// journaledFor snapshots the journaled shards of one campaign. The map
// grows as live completions land, so a later submission reusing a
// campaign (after a cancel, say) restores everything delivered so far.
func (g *registry) journaledFor(fp string) map[int]*shard.Partial {
	g.mu.Lock()
	defer g.mu.Unlock()
	src := g.journaled[fp]
	if len(src) == 0 {
		return nil
	}
	out := make(map[int]*shard.Partial, len(src))
	for i, p := range src {
		out[i] = p
	}
	return out
}

// recordJournaled mirrors an accepted completion into the in-memory
// journal view (and the on-disk journal, if any).
func (g *registry) recordJournaled(fp string, p *shard.Partial) {
	g.mu.Lock()
	m := g.journaled[fp]
	if m == nil {
		m = map[int]*shard.Partial{}
		g.journaled[fp] = m
	}
	m[p.Index] = p
	store := g.store
	g.mu.Unlock()
	if store != nil {
		if err := store.Append(fp, p); err != nil {
			// The result is already accepted and merging will proceed; a
			// journal write failure only weakens crash recovery.
			fmt.Fprintln(os.Stderr, "campaignd: journal append:", err)
		}
	}
}

// liveSweeps returns the sweeps in submission order plus whether the
// coordinator is drained (something was submitted, everything terminal).
func (g *registry) liveSweeps() (order []*sweepRun, drained bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	order = append(order, g.order...)
	drained = g.submitted
	for _, sr := range g.order {
		if !capi.TerminalState(sr.state) {
			drained = false
		}
	}
	return order, drained
}

// routeCampaign resolves the sweep owning a campaign fingerprint.
func (g *registry) routeCampaign(fp string) (*sweepRun, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	sr, ok := g.byCamp[fp]
	return sr, ok
}

func (g *registry) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", g.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps", g.handleList)
	mux.HandleFunc("GET /v1/sweeps/{fp}", g.handleSweep)
	mux.HandleFunc("GET /v1/sweeps/{fp}/results", g.handleResults)
	mux.HandleFunc("DELETE /v1/sweeps/{fp}", g.handleCancel)
	mux.HandleFunc("POST /v1/lease", g.handleLease)
	mux.HandleFunc("POST /v1/complete", g.handleComplete)
	mux.HandleFunc("POST /v1/renew", g.handleRenew)
	mux.HandleFunc("GET /v1/progress", g.handleProgress)
	return mux
}

func (g *registry) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req capi.SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest, "bad submit request: %v", err)
		return
	}
	grid, err := req.Params.Grid()
	if err != nil {
		capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest, "%v", err)
		return
	}
	sr, created, err := g.submit(grid, nil, false)
	if err != nil {
		capi.WriteError(w, http.StatusConflict, capi.CodeConflict, "%v", err)
		return
	}
	g.mu.Lock()
	reply := capi.SubmitReply{
		Fingerprint: sr.fp,
		Name:        sr.grid.Spec.Name,
		Campaigns:   len(sr.grid.Spec.Items),
		State:       sr.state,
		Created:     created,
	}
	g.mu.Unlock()
	if created {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(reply)
		return
	}
	capi.WriteJSON(w, reply)
}

func (g *registry) handleList(w http.ResponseWriter, r *http.Request) {
	order, _ := g.liveSweeps()
	out := make([]capi.SweepSummary, 0, len(order))
	now := g.now()
	for _, sr := range order {
		pr := sr.pool.Progress(now)
		g.mu.Lock()
		out = append(out, capi.SweepSummary{
			Fingerprint:    sr.fp,
			Name:           sr.grid.Spec.Name,
			State:          sr.state,
			CampaignsTotal: pr.CampaignsTotal,
			CampaignsDone:  pr.CampaignsDone,
		})
		g.mu.Unlock()
	}
	capi.WriteJSON(w, out)
}

// lookup resolves the {fp} path component; a miss writes the 404.
func (g *registry) lookup(w http.ResponseWriter, r *http.Request) (*sweepRun, bool) {
	fp := r.PathValue("fp")
	g.mu.Lock()
	sr, ok := g.sweeps[fp]
	g.mu.Unlock()
	if !ok {
		capi.WriteError(w, http.StatusNotFound, capi.CodeNotFound, "no sweep %.12s; GET /v1/sweeps lists them", fp)
		return nil, false
	}
	return sr, true
}

// status snapshots one sweep as its API status document.
func (g *registry) status(sr *sweepRun) capi.SweepStatus {
	pr := sr.pool.Progress(g.now())
	g.mu.Lock()
	defer g.mu.Unlock()
	return capi.SweepStatus{
		Fingerprint: sr.fp,
		Name:        sr.grid.Spec.Name,
		State:       sr.state,
		Error:       sr.stateMsg,
		Progress:    pr,
	}
}

func (g *registry) handleSweep(w http.ResponseWriter, r *http.Request) {
	sr, ok := g.lookup(w, r)
	if !ok {
		return
	}
	capi.WriteJSON(w, g.status(sr))
}

func (g *registry) handleResults(w http.ResponseWriter, r *http.Request) {
	sr, ok := g.lookup(w, r)
	if !ok {
		return
	}
	g.mu.Lock()
	state, msg, rendered := sr.state, sr.stateMsg, sr.rendered
	g.mu.Unlock()
	switch state {
	case capi.StateDone:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(rendered)
	case capi.StateCancelled:
		capi.WriteError(w, http.StatusGone, capi.CodeCancelled, "sweep %.12s was cancelled", sr.fp)
	case capi.StateFailed:
		capi.WriteError(w, http.StatusInternalServerError, capi.CodeFailed, "sweep %.12s failed: %s", sr.fp, msg)
	default:
		capi.WriteError(w, http.StatusConflict, capi.CodePending, "sweep %.12s still running; poll GET /v1/sweeps/%s", sr.fp, sr.fp)
	}
}

// handleCancel cancels a sweep; with ?purge=1 it additionally forgets it:
// the resource leaves the registry (subsequent GETs 404, resubmission
// starts fresh) and its campaigns' journal records are dropped from disk
// before the reply — the eager path of journal compaction.
func (g *registry) handleCancel(w http.ResponseWriter, r *http.Request) {
	sr, ok := g.lookup(w, r)
	if !ok {
		return
	}
	g.cancel(sr)
	st := g.status(sr)
	if r.URL.Query().Get("purge") == "1" {
		g.purge(sr)
	}
	capi.WriteJSON(w, st)
}

func (g *registry) handleLease(w http.ResponseWriter, r *http.Request) {
	var req capi.LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest, "bad lease request: %v", err)
		return
	}
	order, drained := g.liveSweeps()
	now := g.now()
	for _, sr := range order {
		if l, ok := sr.pool.Lease(req.Worker, now); ok {
			capi.WriteJSON(w, l)
			return
		}
	}
	if drained {
		// Everything ever submitted is terminal: the coordinator is about
		// to wind down, workers should exit rather than poll.
		w.WriteHeader(http.StatusGone)
		return
	}
	// Idle: everything leased out, later campaigns still building, or no
	// sweeps submitted yet.
	w.WriteHeader(http.StatusNoContent)
}

func (g *registry) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req capi.CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest, "bad completion: %v", err)
		return
	}
	if req.Partial == nil {
		capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest, "completion carries no partial")
		return
	}
	fp := g.resolveFingerprint(req.Fingerprint)
	sr, ok := g.routeCampaign(fp)
	if !ok {
		capi.WriteError(w, http.StatusConflict, capi.CodeConflict, "completion names unknown campaign %.12s", fp)
		return
	}
	if err := sr.pool.Complete(fp, req.LeaseID, req.Partial, g.now()); err != nil {
		capi.WriteError(w, http.StatusConflict, capi.CodeConflict, "%v", err)
		return
	}
	g.recordJournaled(fp, req.Partial)
	w.WriteHeader(http.StatusOK)
}

func (g *registry) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req capi.RenewRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		capi.WriteError(w, http.StatusBadRequest, capi.CodeBadRequest, "bad renewal: %v", err)
		return
	}
	fp := g.resolveFingerprint(req.Fingerprint)
	sr, ok := g.routeCampaign(fp)
	if !ok {
		capi.WriteError(w, http.StatusConflict, capi.CodeConflict, "renewal names unknown campaign %.12s", fp)
		return
	}
	exp, err := sr.pool.Renew(fp, req.LeaseID, g.now())
	if err != nil {
		capi.WriteError(w, http.StatusConflict, capi.CodeConflict, "%v", err)
		return
	}
	capi.WriteJSON(w, capi.RenewReply{ExpiresAt: exp})
}

// resolveFingerprint fills in the campaign fingerprint for pre-sweep
// workers that never sent one; with a single self-submitted campaign
// served the routing is unambiguous.
func (g *registry) resolveFingerprint(fp string) string {
	if fp != "" {
		return fp
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.initial != nil && g.initial.single != nil {
		return g.initial.single.Fingerprint()
	}
	return fp
}

// handleProgress is the deprecated pre-resource progress endpoint: an
// alias of GET /v1/sweeps/{fp} on the first-submitted sweep, kept for
// one release. The reply carries a Deprecation header pointing at the
// successor.
func (g *registry) handleProgress(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	var sr *sweepRun
	if len(g.order) > 0 {
		sr = g.order[0]
	}
	g.mu.Unlock()
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", `</v1/sweeps>; rel="successor-version"`)
	if sr == nil {
		capi.WriteError(w, http.StatusNotFound, capi.CodeNotFound, "no sweeps submitted; use GET /v1/sweeps")
		return
	}
	sp := sr.pool.Progress(g.now())
	reply := progressReply{
		Fingerprint: sp.Fingerprint,
		Done:        sp.Done,
		Sweep:       sp,
	}
	if sr.single != nil && len(sp.Campaigns) == 1 {
		reply.Fingerprint = sp.Campaigns[0].Fingerprint
		reply.Design = sr.single.SoC
		reply.Progress = sp.Campaigns[0].Shards
	}
	capi.WriteJSON(w, reply)
}

// serveOpts is the parsed configuration of one serve run.
type serveOpts struct {
	grid     *sweep.Grid // self-submitted at startup; nil = start empty
	single   bool        // one-campaign mode: legacy report + result-JSON -out
	shards   int         // per campaign; tiny campaigns degrade to fewer
	journal  string
	leaseTTL time.Duration
	linger   time.Duration
	outPath  string // single: merged result JSON; sweep: rendered grid text
	outDir   string // sweep: per-campaign result JSON directory
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("campaignd serve", flag.ContinueOnError)
	specOf := shard.CampaignFlags(fs)
	paramsOf := sweep.GridParamsFlags(fs)
	addr := fs.String("addr", "127.0.0.1:8372", "listen address")
	shards := fs.Int("shards", 8, "number of shards to split each campaign into")
	journal := fs.String("journal", "", "append-only shard journal, namespaced per campaign; sweeps restarted with the same journal skip finished shards")
	lease := fs.Duration("lease", 10*time.Minute, "shard lease duration; workers heartbeat at a third of it, so a live shard outrunning the lease is renewed, not re-issued")
	linger := fs.Duration("linger", 3*time.Second, "idle grace: once every submitted sweep is terminal, keep serving this long (new submissions revive the server; pollers observe completion) before exiting")
	out := fs.String("out", "", "single campaign: write the merged result JSON here; sweep: write the rendered tables here")
	outDir := fs.String("outdir", "", "sweep: write each campaign's merged result JSON into this directory, named by campaign key")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", *shards)
	}
	if err := positiveDuration("lease", *lease); err != nil {
		return err
	}
	if *linger < 0 {
		return fmt.Errorf("-linger must not be negative, got %v", *linger)
	}
	params, isSweep, err := paramsOf()
	if err != nil {
		return err
	}
	// A campaign flag set explicitly means the classic single-campaign
	// batch mode; no campaign or sweep flags at all means an empty,
	// long-lived service that waits for POST /v1/sweeps submissions.
	single := false
	fs.Visit(func(f *flag.Flag) {
		if shard.CampaignFlagNames[f.Name] {
			single = true
		}
	})
	opts := serveOpts{
		single:   single,
		shards:   *shards,
		journal:  *journal,
		leaseTTL: *lease,
		linger:   *linger,
		outPath:  *out,
		outDir:   *outDir,
	}
	switch {
	case isSweep:
		grid, err := params.Grid()
		if err != nil {
			return err
		}
		opts.grid = &grid
	case single:
		cs, err := specOf()
		if err != nil {
			return err
		}
		grid := singleCampaignGrid(cs)
		opts.grid = &grid
	}
	if *outDir != "" {
		// Create it now: failing after the fleet has simulated for
		// minutes would lose the sweep's in-flight work.
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("-outdir: %v", err)
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	return serve(opts, ln, os.Stdout)
}

// singleCampaignGrid wraps one campaign as a degenerate sweep whose
// rendered artifact is the classic campaign report.
func singleCampaignGrid(cs shard.CampaignSpec) sweep.Grid {
	it := sweep.Item{Key: fmt.Sprintf("soc%d-%s", cs.SoC, cs.Workload), Campaign: cs}
	return sweep.Grid{
		Spec: sweep.SweepSpec{Name: "campaign", Items: []sweep.Item{it}},
		Render: func(w io.Writer, results map[string]*inject.Result) error {
			r, ok := results[cs.Fingerprint()]
			if !ok {
				return fmt.Errorf("campaign %.12s has no merged result", cs.Fingerprint())
			}
			fmt.Fprint(w, r.String())
			return nil
		},
	}
}

// syncWriter serializes progress lines: sweep run goroutines and their
// campaign builders all narrate to the same writer.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// serve runs the coordinator on an accepted listener. Sweeps arrive as
// POST /v1/sweeps submissions or as the one self-submission opts.grid
// describes; each drives itself to a terminal state. serve exits once
// the registry is idle — at least one sweep was submitted and all are
// terminal — and stays idle through the -linger grace window (new
// submissions revive it; lingering also lets polling workers observe
// the 410 drained signal instead of a dead socket). Split from runServe
// so the end-to-end tests can drive it on an ephemeral port.
func serve(opts serveOpts, ln net.Listener, rawStdout io.Writer) error {
	stdout := &syncWriter{w: rawStdout}
	var store *runstore.Store
	journaled := map[string]map[int]*shard.Partial{}
	var err error
	if opts.journal != "" {
		if journaled, err = runstore.LoadAll(opts.journal); err != nil {
			return err
		}
		if store, err = runstore.Open(opts.journal); err != nil {
			return err
		}
		defer store.Close()
	}
	g := newRegistry(opts, store, journaled, stdout)
	fmt.Fprintf(stdout, "campaignd: serving on %s (lease %v, %d shards per campaign)\n",
		ln.Addr(), opts.leaseTTL, opts.shards)

	srv := &http.Server{Handler: g.mux()}
	defer srv.Close()
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.Serve(ln) }()

	if opts.grid != nil {
		var single *shard.CampaignSpec
		if opts.single {
			single = &opts.grid.Spec.Items[0].Campaign
		}
		if _, _, err := g.submit(*opts.grid, single, true); err != nil {
			return err
		}
	}

	// Serve until idle: every submitted sweep terminal and the linger
	// window passed without a new submission reviving the server.
	for {
		if g.idle() {
			select {
			case <-g.changed:
				continue
			case err := <-srvErr:
				return fmt.Errorf("serving: %v", err)
			case <-time.After(opts.linger):
				if !g.idle() {
					continue
				}
			}
			break
		}
		select {
		case <-g.changed:
		case err := <-srvErr:
			return fmt.Errorf("serving: %v", err)
		}
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "campaignd: shutdown:", err)
	}

	// The self-submitted sweep is the batch job serve was asked to run;
	// its failure is serve's failure. Submitted sweeps report theirs
	// through the API instead.
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.initial != nil && g.initial.state == capi.StateFailed {
		return errors.New(g.initial.stateMsg)
	}
	return nil
}

func writeResultJSON(path string, res *inject.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return res.WriteJSON(f)
}
