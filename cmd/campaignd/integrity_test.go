package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/capi"
	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/runstore"
	"repro/internal/shard"
	"repro/internal/ssresf"
	"repro/internal/sweep"
)

// TestIntegritySmoke is the `make integrity-smoke` acceptance gate: a
// quick grid drained by a hostile fleet. One worker's wire corrupts
// most of its completion payloads in flight (every one must be refused
// with integrity_mismatch and re-issued), one worker computes wrong
// results with self-consistent checksums (the audit vote must outvote
// and quarantine it), one worker is honest. The merged grid must come
// out byte-identical to the clean in-process reference, and the
// observability surface must show the whole story: integrity rejects,
// audit divergences, and fleet_workers{state="quarantined"}.
func TestIntegritySmoke(t *testing.T) {
	ec := ssresf.DefaultExperimentConfig(true)
	want := inProcessLETReference(t, ec, []int{1})
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Minute)
	defer cancel()

	reg := obs.NewRegistry()
	serveOut := &safeBuf{}
	// Unbounded attempts: the corrupting wire burns a lease per refused
	// completion, and that churn must never quarantine the shard itself.
	// Long shard leases keep the audit repeat-voter window closed for the
	// whole run; speculation off keeps completions single-sourced so every
	// corrupt fault maps to one refused POST.
	url, serveErr := startServe(t, serveOpts{
		shards:     2,
		leaseTTL:   time.Minute,
		linger:     15 * time.Second,
		specFactor: -1,
		auditFrac:  1,
		obsReg:     reg,
	}, serveOut)

	client := capi.NewClient(url)
	reply, err := client.Submit(ctx, quickLETParams(1))
	if err != nil {
		t.Fatal(err)
	}

	// Worker "wire": an honest executor behind a wire that flips a digit
	// inside 90% of its completion payloads.
	corruptTr := chaos.New(chaos.Config{Seed: 7, Corrupt: 0.9, CorruptPath: "/v1/complete"})
	corruptTr.SetObs(reg)
	corruptClient := capi.NewClient(url)
	corruptClient.HTTP = &http.Client{Transport: corruptTr, Timeout: 30 * time.Second}
	corruptClient.Retries = 8
	corruptClient.RetryBase = 10 * time.Millisecond
	corruptClient.RetryCap = 100 * time.Millisecond
	corruptClient.Obs = reg

	// Worker "faulty": computes a wrong verdict on every shard and stamps
	// it — the checksum is self-consistent, so only audit re-execution on
	// another worker can catch it.
	tamper := func(p *shard.Partial) {
		if len(p.Injections) > 0 {
			p.Injections[0].TimePS += 1000
		}
		p.Stamp()
	}

	wireOut, faultyOut, cleanOut := &safeBuf{}, &safeBuf{}, &safeBuf{}
	wireErr := make(chan error, 1)
	faultyErr := make(chan error, 1)
	cleanErr := make(chan error, 1)
	go func() {
		wireErr <- work(ctx, workOpts{url: url, name: "int-wire", poll: 25 * time.Millisecond,
			out: wireOut, client: corruptClient, obsReg: reg})
	}()
	go func() {
		faultyErr <- work(ctx, workOpts{url: url, name: "int-faulty", poll: 25 * time.Millisecond,
			out: faultyOut, tamper: tamper, obsReg: reg})
	}()
	go func() {
		cleanErr <- work(ctx, workOpts{url: url, name: "int-clean", poll: 25 * time.Millisecond,
			out: cleanOut, obsReg: reg})
	}()

	st, err := client.WaitSweep(ctx, reply.Fingerprint, nil)
	if err != nil {
		t.Fatalf("waiting on sweep: %v\nserve:\n%s", err, serveOut.String())
	}
	if st.State != capi.StateDone {
		t.Fatalf("sweep ended %q (%s), want done\nserve:\n%s", st.State, st.Error, serveOut.String())
	}

	// Byte-identity under fire: corrupted partials refused, tampered
	// partials outvoted and replaced — the rendered grid must match the
	// clean single-process reference exactly.
	got, err := client.Results(ctx, reply.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("integrity-smoke output diverges from clean reference:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The faulty worker was quarantined mid-sweep and must exit with the
	// health verdict, not drain normally.
	if err := <-faultyErr; err == nil || !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("faulty worker exit = %v, want quarantine refusal\nfaulty:\n%s\nserve:\n%s",
			err, faultyOut.String(), serveOut.String())
	}
	if !strings.Contains(serveOut.String(), "worker quarantined after repeated audit divergence") {
		t.Fatalf("coordinator never logged the worker quarantine:\n%s", serveOut.String())
	}

	// fleet_workers{state="quarantined"} counts it while the coordinator
	// still serves (linger window).
	resp, err := http.Get(url + "/metrics/fleet")
	if err != nil {
		t.Fatal(err)
	}
	fleetBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fleetBody), `fleet_workers{state="quarantined"} 1`) {
		t.Fatalf("fleet exposition does not count the quarantined worker:\n%s", fleetBody)
	}

	// The scrape tells the rest: corruption fired, every corrupted POST
	// was refused on checksum (never accepted — byte-identity above is
	// the proof), and at least one audit caught a divergence.
	sc, err := obs.ParseText(reg.Expose())
	if err != nil {
		t.Fatalf("exposition rejected by the strict parser: %v", err)
	}
	corrupts := corruptTr.Stats().Corrupts
	if corrupts < 1 {
		t.Fatalf("chaos corrupt fault never fired (%d requests)", corruptTr.Stats().Requests)
	}
	if v, ok := sc.Value("shard_integrity_rejects_total"); !ok || v < 1 {
		t.Fatalf("shard_integrity_rejects_total = %v, %v; want >= 1 (%d corrupts injected)", v, ok, corrupts)
	}
	if v, ok := sc.Value("shard_audits_total"); !ok || v < 1 {
		t.Fatalf("shard_audits_total = %v, %v; want >= 1", v, ok)
	}
	if v, ok := sc.Value("shard_audit_divergences_total"); !ok || v < 1 {
		t.Fatalf("shard_audit_divergences_total = %v, %v; want >= 1", v, ok)
	}

	// The surviving workers drain normally; the coordinator exits clean.
	if err := <-wireErr; err != nil {
		t.Fatalf("wire worker: %v\n%s", err, wireOut.String())
	}
	if err := <-cleanErr; err != nil {
		t.Fatalf("clean worker: %v\n%s", err, cleanOut.String())
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v\n%s", err, serveOut.String())
	}
}

// TestPoisonShardQuarantine pins the poison-work containment path end
// to end: a shard that crashes its executor on every attempt must burn
// through its attempt bound, land in quarantine, and fail the sweep
// with the shard named — instead of hanging the fleet forever. The
// worker process itself must survive every crash (typed failure
// reports, not worker deaths) and drain out cleanly.
func TestPoisonShardQuarantine(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	reg := obs.NewRegistry()
	serveOut := &safeBuf{}
	url, serveErr := startServe(t, serveOpts{
		shards:      2,
		leaseTTL:    time.Minute,
		linger:      5 * time.Second,
		maxAttempts: 2,
		obsReg:      reg,
	}, serveOut)

	client := capi.NewClient(url)
	reply, err := client.Submit(ctx, quickLETParams(1))
	if err != nil {
		t.Fatal(err)
	}

	// The poison target: shard 0 of the grid's first campaign.
	ec := ssresf.DefaultExperimentConfig(true)
	g, err := sweep.LETGrid(ec, 1, sweepTestLETs, "memcpy")
	if err != nil {
		t.Fatal(err)
	}
	poisonFP := cfpOf(t, g.Spec.Items[0].Campaign)

	wOut := &safeBuf{}
	wErr := make(chan error, 1)
	go func() {
		wErr <- work(ctx, workOpts{url: url, name: "pw", poll: 25 * time.Millisecond, out: wOut, obsReg: reg,
			failShard: func(sp shard.Spec) error {
				if sp.Fingerprint == poisonFP && sp.Index == 0 {
					return errors.New("injection 0 crashes the simulator")
				}
				return nil
			}})
	}()

	st, err := client.WaitSweep(ctx, reply.Fingerprint, nil)
	if err != nil {
		t.Fatalf("waiting on sweep: %v\nserve:\n%s", err, serveOut.String())
	}
	if st.State != capi.StateFailed {
		t.Fatalf("sweep ended %q, want failed\nserve:\n%s", st.State, serveOut.String())
	}
	if !strings.Contains(st.Error, "quarantined as poison work") ||
		!strings.Contains(st.Error, "injection 0 crashes the simulator") {
		t.Fatalf("sweep error %q does not name the poison shard and its reason", st.Error)
	}

	// The quarantined shard surfaces in the sweep's progress, attributed
	// to the right campaign.
	quarantined := -1
	for _, cp := range st.Progress.Campaigns {
		if cp.Fingerprint == poisonFP {
			quarantined = cp.Shards.Quarantined
		}
	}
	if quarantined != 1 {
		t.Fatalf("poisoned campaign reports %d quarantined shards, want 1\nprogress: %+v", quarantined, st.Progress)
	}

	// The worker survived both crashes (typed reports, then drained out).
	if err := <-wErr; err != nil {
		t.Fatalf("worker must survive shard crashes, exited: %v\n%s", err, wOut.String())
	}
	if n := strings.Count(wOut.String(), "shard execution panicked"); n != 2 {
		t.Fatalf("worker reported %d crashes, want 2 (the attempt bound)\n%s", n, wOut.String())
	}

	sc, err := obs.ParseText(reg.Expose())
	if err != nil {
		t.Fatalf("exposition rejected by the strict parser: %v", err)
	}
	if v, ok := sc.Value("shard_quarantines_total"); !ok || v < 1 {
		t.Fatalf("shard_quarantines_total = %v, %v; want >= 1", v, ok)
	}
	if v, ok := sc.Value("shard_failures_total"); !ok || v < 2 {
		t.Fatalf("shard_failures_total = %v, %v; want >= 2", v, ok)
	}

	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v\n%s", err, serveOut.String())
	}
}

// TestJournalCorruptRecordReplay pins satellite (c) end to end: a
// journal record whose payload was damaged at rest — syntactically
// valid JSON, checksum now wrong — must be skipped on replay with a
// warning, its shard re-simulated by the fleet, and the rendered grid
// byte-identical to the undamaged run. The other journaled shards must
// not be re-simulated.
func TestJournalCorruptRecordReplay(t *testing.T) {
	socs := []int{1}
	grid, ec := sweepTestGrid(t, socs)
	want := inProcessLETReference(t, ec, socs)

	dir := t.TempDir()
	journal := filepath.Join(dir, "sweep.jsonl")
	out1 := filepath.Join(dir, "grid1.txt")
	out2 := filepath.Join(dir, "grid2.txt")
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Minute)
	defer cancel()

	// Phase 1: a clean journaled run establishes the reference journal.
	serveOut1 := &safeBuf{}
	url1, serveErr1 := startServe(t, serveOpts{
		grid:       &grid,
		shards:     2,
		journal:    journal,
		leaseTTL:   time.Minute,
		linger:     time.Second,
		specFactor: -1,
		outPath:    out1,
	}, serveOut1)
	w1Out := &safeBuf{}
	w1Err := make(chan error, 1)
	go func() {
		w1Err <- work(ctx, workOpts{url: url1, name: "jw1", poll: 25 * time.Millisecond, out: w1Out})
	}()
	select {
	case err := <-serveErr1:
		if err != nil {
			t.Fatalf("phase-1 serve: %v\n%s", err, serveOut1.String())
		}
	case <-ctx.Done():
		t.Fatalf("phase-1 sweep never completed:\n%s\n%s", serveOut1.String(), w1Out.String())
	}
	if err := <-w1Err; err != nil {
		t.Fatalf("phase-1 worker: %v", err)
	}
	got1, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, want) {
		t.Fatalf("phase-1 output diverges from in-process reference:\n%s", got1)
	}

	// Damage one shard record at rest: mutate its payload but leave its
	// checksum — the syntactically-valid-but-wrong record the replay
	// verifier exists to catch.
	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(raw, []byte("\n"))
	damagedFP, damagedIdx := "", -1
	for i, ln := range lines {
		if len(bytes.TrimSpace(ln)) == 0 {
			continue
		}
		var rec runstore.Record
		if err := json.Unmarshal(ln, &rec); err != nil {
			t.Fatalf("journal line %d unparsable: %v", i, err)
		}
		if rec.Partial == nil || rec.Partial.Checksum == "" || len(rec.Partial.Injections) == 0 {
			continue
		}
		rec.Partial.Injections[0].TimePS += 777
		mangled, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		lines[i] = mangled
		damagedFP, damagedIdx = rec.Fingerprint, rec.Partial.Index
		break
	}
	if damagedIdx < 0 {
		t.Fatalf("no checksummed shard record found in journal:\n%s", raw)
	}
	if err := os.WriteFile(journal, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	// Phase 2: replay must skip exactly the damaged record, re-simulate
	// that one shard through the worker, and render identical bytes.
	serveOut2 := &safeBuf{}
	url2, serveErr2 := startServe(t, serveOpts{
		grid:       &grid,
		shards:     2,
		journal:    journal,
		leaseTTL:   time.Minute,
		linger:     time.Second,
		specFactor: -1,
		outPath:    out2,
	}, serveOut2)
	w2Out := &safeBuf{}
	w2Err := make(chan error, 1)
	go func() {
		w2Err <- work(ctx, workOpts{url: url2, name: "jw2", poll: 25 * time.Millisecond, out: w2Out})
	}()
	select {
	case err := <-serveErr2:
		if err != nil {
			t.Fatalf("phase-2 serve: %v\n%s", err, serveOut2.String())
		}
	case <-ctx.Done():
		t.Fatalf("phase-2 sweep never completed:\n%s\n%s", serveOut2.String(), w2Out.String())
	}
	if err := <-w2Err; err != nil {
		t.Fatalf("phase-2 worker: %v", err)
	}

	if !strings.Contains(serveOut2.String(), "journal records failed their integrity checksum") {
		t.Fatalf("replay never warned about the damaged record:\n%s", serveOut2.String())
	}
	// Exactly the damaged shard was re-simulated; every intact record
	// replayed from the journal.
	resimLine := fmt.Sprintf("campaign=%.12s shard=%d ", damagedFP, damagedIdx)
	if !strings.Contains(w2Out.String(), resimLine) {
		t.Fatalf("damaged shard %s%d never re-simulated:\n%s", damagedFP[:12], damagedIdx, w2Out.String())
	}
	if n := strings.Count(w2Out.String(), "shard done"); n != 1 {
		t.Fatalf("phase-2 worker simulated %d shards, want exactly 1 (the damaged one)\n%s", n, w2Out.String())
	}

	got2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, want) {
		t.Fatalf("replayed output diverges from reference:\n--- got ---\n%s\n--- want ---\n%s", got2, want)
	}
}
