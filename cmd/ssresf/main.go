// Command ssresf drives the full framework pipeline end to end on one
// benchmark: netlist generation, clustering, fault injection, soft-error
// analysis, SVM training and fast sensitivity prediction.
//
// Usage:
//
//	ssresf [-soc 1] [-sample 0.2] [-seed 1] [-grid] [-v out.v] [-db out.sedb]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fault"
	"repro/internal/inject"
	"repro/internal/mlmetrics"
	"repro/internal/netlist"
	"repro/internal/riscv"
	"repro/internal/socgen"
	"repro/internal/ssresf"
)

func main() {
	socIdx := flag.Int("soc", 1, "Table I benchmark index (1-10)")
	sample := flag.Float64("sample", 0.2, "per-cluster sampling fraction")
	seed := flag.Uint64("seed", 1, "random seed")
	grid := flag.Bool("grid", false, "grid-search SVM hyper-parameters")
	verilogOut := flag.String("v", "", "also write the benchmark netlist as Verilog to this file")
	dbOut := flag.String("db", "", "also write the soft-error database to this file")
	flag.Parse()

	cfg, err := socgen.ConfigByIndex(*socIdx)
	if err != nil {
		fatal(err)
	}
	db := fault.DefaultDB()

	if *verilogOut != "" {
		d, err := socgen.Generate(cfg)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*verilogOut)
		if err != nil {
			fatal(err)
		}
		if err := netlist.WriteVerilog(f, d); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("wrote netlist to %s\n", *verilogOut)
	}
	if *dbOut != "" {
		f, err := os.Create(*dbOut)
		if err != nil {
			fatal(err)
		}
		if err := fault.Marshal(f, db); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("wrote soft-error database to %s\n", *dbOut)
	}

	opts := inject.DefaultOptions()
	opts.SampleFrac = *sample
	opts.Seed = *seed
	paperKN := []int{5, 6, 8, 9, 14, 15, 18, 19, 21, 23}
	opts.KN = paperKN[*socIdx-1]

	fmt.Printf("== dynamic simulation phase: %s ==\n", cfg.Name)
	an, err := ssresf.AnalyzeSoC(cfg, riscv.MemcpyProgram(16), db, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Print(an.Run.Result.String())

	fmt.Printf("\n== machine learning phase ==\n")
	cls, err := ssresf.Train(an.Dataset, ssresf.TrainOptions{
		GridSearch: *grid,
		Seed:       *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("features: %v\n", cls.Selected)
	fmt.Printf("kernel %s, C=%g, %d-fold CV: %s\n", cls.Config.Kernel.Name(), cls.Config.C, cls.FoldsK, cls.TrainCV.String())

	pred, dur, err := cls.Predict(an.Run.Flat)
	if err != nil {
		fatal(err)
	}
	labels := an.Run.Result.LabelCellsRefined(an.Run.Result.ChipSER)
	var cm mlmetrics.Confusion
	high := 0
	for i := range pred {
		cm.Count(pred[i], labels[i])
		if pred[i] {
			high++
		}
	}
	simTime := an.Run.Result.GoldenWall + an.Run.Result.InjectWall
	fmt.Printf("\n== prediction service ==\n")
	fmt.Printf("predicted %d/%d nodes highly sensitive in %v\n", high, len(pred), dur)
	fmt.Printf("agreement with simulation labels: %s\n", cm.String())
	if dur > 0 {
		fmt.Printf("speed-up vs full simulation: %.1fx\n", float64(simTime)/float64(dur))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssresf:", err)
	os.Exit(1)
}
