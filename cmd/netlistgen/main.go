// Command netlistgen emits any Table I benchmark as structural Verilog.
//
// Usage:
//
//	netlistgen -soc 3 [-o out.v] [-stats]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/netlist"
	"repro/internal/socgen"
)

func main() {
	socIdx := flag.Int("soc", 1, "Table I benchmark index (1-10)")
	out := flag.String("o", "", "output file (default stdout)")
	stats := flag.Bool("stats", false, "print design statistics to stderr")
	flag.Parse()

	cfg, err := socgen.ConfigByIndex(*socIdx)
	if err != nil {
		fatal(err)
	}
	d, err := socgen.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := netlist.WriteVerilog(w, d); err != nil {
		fatal(err)
	}
	if *stats {
		f, err := netlist.Flatten(d)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%s: %s", cfg.Name, netlist.ComputeStats(f))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netlistgen:", err)
	os.Exit(1)
}
