// Command tables regenerates every table and figure of the paper's
// evaluation section in one run.
//
// Usage:
//
//	tables              # everything, full sampling
//	tables -quick       # reduced sampling (fast smoke run)
//	tables -table 1     # only Table I
//	tables -fig 5       # only Fig. 5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/socgen"
	"repro/internal/ssresf"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sampling for a fast run")
	table := flag.Int("table", 0, "regenerate only this table (1-3)")
	fig := flag.Int("fig", 0, "regenerate only this figure (5-7)")
	flag.Parse()

	ec := ssresf.DefaultExperimentConfig(*quick)
	all := *table == 0 && *fig == 0
	out := os.Stdout

	if all || *table == 1 {
		rows, err := ssresf.TableI(ec)
		if err != nil {
			fatal(err)
		}
		ssresf.RenderTableI(out, rows)
		fmt.Fprintln(out)
	}
	if all || *table == 2 {
		rows, avg, err := ssresf.TableII(ec, nil)
		if err != nil {
			fatal(err)
		}
		ssresf.RenderTableII(out, rows, avg)
		fmt.Fprintln(out)
	}
	if all || *fig == 5 || *fig == 6 {
		cfg, err := socgen.ConfigByIndex(1)
		if err != nil {
			fatal(err)
		}
		an, err := ssresf.AnalyzeSoC(cfg, ec.Workload, ec.DB, ec.OptionsFor(1))
		if err != nil {
			fatal(err)
		}
		if all || *fig == 5 {
			pts, err := ssresf.Fig5(an.Dataset, ec.Train.Folds, ec.Train.Seed)
			if err != nil {
				fatal(err)
			}
			ssresf.RenderFig5(out, pts)
			fmt.Fprintln(out)
		}
		if all || *fig == 6 {
			cls, err := ssresf.Train(an.Dataset, ec.Train)
			if err != nil {
				fatal(err)
			}
			curve, auc, err := ssresf.Fig6(cls, an)
			if err != nil {
				fatal(err)
			}
			ssresf.RenderFig6(out, curve, auc)
			fmt.Fprintln(out)
		}
	}
	if all || *table == 3 {
		rows, avg, err := ssresf.TableIII(ec, nil)
		if err != nil {
			fatal(err)
		}
		ssresf.RenderTableIII(out, rows, avg)
		fmt.Fprintln(out)
	}
	if all || *fig == 7 {
		rows, err := ssresf.Fig7(ec, nil)
		if err != nil {
			fatal(err)
		}
		ssresf.RenderFig7(out, rows)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tables:", err)
	os.Exit(1)
}
