// Command svmnode runs the machine-learning phase on one benchmark: a
// fault-injection campaign produces the labeled node dataset, then the SVM
// classifier is trained, cross-validated and evaluated.
//
// Usage:
//
//	svmnode -soc 1 [-features 6] [-folds 10] [-grid] [-sample 0.2] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fault"
	"repro/internal/inject"
	"repro/internal/mlmetrics"
	"repro/internal/riscv"
	"repro/internal/socgen"
	"repro/internal/ssresf"
)

func main() {
	socIdx := flag.Int("soc", 1, "Table I benchmark index (1-10)")
	nFeatures := flag.Int("features", 6, "number of ranked features to keep")
	folds := flag.Int("folds", 10, "cross-validation folds")
	grid := flag.Bool("grid", false, "grid-search (C, gamma)")
	sample := flag.Float64("sample", 0.2, "per-cluster sampling fraction")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	cfg, err := socgen.ConfigByIndex(*socIdx)
	if err != nil {
		fatal(err)
	}
	opts := inject.DefaultOptions()
	opts.SampleFrac = *sample
	opts.Seed = *seed
	paperKN := []int{5, 6, 8, 9, 14, 15, 18, 19, 21, 23}
	opts.KN = paperKN[*socIdx-1]

	fmt.Fprintf(os.Stderr, "running fault-injection campaign on %s...\n", cfg.Name)
	an, err := ssresf.AnalyzeSoC(cfg, riscv.MemcpyProgram(16), fault.DefaultDB(), opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset: %d nodes, %d highly sensitive\n", len(an.Dataset.Y), an.Dataset.PositiveCount())

	cls, err := ssresf.Train(an.Dataset, ssresf.TrainOptions{
		FeatureCount: *nFeatures,
		Folds:        *folds,
		GridSearch:   *grid,
		Seed:         *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("selected features: %v\n", cls.Selected)
	fmt.Printf("kernel: %s  C=%g\n", cls.Config.Kernel.Name(), cls.Config.C)
	fmt.Printf("%d-fold CV: %s\n", cls.FoldsK, cls.TrainCV.String())

	pred, dur, err := cls.Predict(an.Run.Flat)
	if err != nil {
		fatal(err)
	}
	labels := an.Run.Result.LabelCellsRefined(an.Run.Result.ChipSER)
	var cm mlmetrics.Confusion
	for i := range pred {
		cm.Count(pred[i], labels[i])
	}
	fmt.Printf("full-design prediction in %v: %s\n", dur, cm.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "svmnode:", err)
	os.Exit(1)
}
