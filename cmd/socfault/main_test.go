package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/runstore"
	"repro/internal/shard"
)

// TestParseFlagsValidation pins the upfront flag validation: every broken
// flag or combination must fail fast with an actionable message instead
// of panicking deep inside the campaign.
func TestParseFlagsValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the expected error
	}{
		{"bad soc low", []string{"-soc", "0"}, "SoC"},
		{"bad soc high", []string{"-soc", "11"}, "SoC"},
		{"bad engine", []string{"-engine", "Verilator"}, "engine"},
		{"bad workload", []string{"-workload", "quicksort3"}, "workload"},
		{"sample zero", []string{"-sample", "0"}, "sample fraction"},
		{"sample high", []string{"-sample", "1.5"}, "sample fraction"},
		{"negative flux", []string{"-flux", "-1"}, "flux"},
		{"negative ckpt", []string{"-ckpt", "-2"}, "-ckpt"},
		{"zero shards", []string{"-shards", "0"}, "-shards"},
		{"resume without journal", []string{"-resume"}, "-resume needs -journal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseFlags(tc.args)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: error %q does not mention %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.spec.KN != shard.PaperKN(1) {
		t.Errorf("default KN %d, want paper value %d", cfg.spec.KN, shard.PaperKN(1))
	}
	if cfg.shards != 1 || cfg.journal != "" || cfg.resume {
		t.Errorf("sharding defaults wrong: %+v", cfg)
	}
	cfg, err = parseFlags([]string{"-soc", "3", "-kn", "7", "-shards", "4"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.spec.KN != 7 || cfg.spec.SoC != 3 || cfg.shards != 4 {
		t.Errorf("explicit flags lost: %+v", cfg)
	}
}

// TestParseFlagsRefusesStaleJournalWithoutResume covers the footgun of
// re-running a journaled campaign without -resume.
func TestParseFlagsRefusesStaleJournalWithoutResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "run.jsonl")
	cfg, err := parseFlags([]string{"-journal", journal})
	if err != nil {
		t.Fatalf("fresh journal path rejected: %v", err)
	}
	st, err := runstore.Open(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(cfg.spec.Fingerprint(), &shard.Partial{Index: 0, Start: 0, End: 1}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := parseFlags([]string{"-journal", journal}); err == nil {
		t.Fatal("journal with recorded shards accepted without -resume")
	}
	if _, err := parseFlags([]string{"-journal", journal, "-resume"}); err != nil {
		t.Fatalf("-resume on recorded journal rejected: %v", err)
	}
	// A journal holding only a different campaign's shards is fine.
	if _, err := parseFlags([]string{"-journal", journal, "-seed", "99"}); err != nil {
		t.Fatalf("journal of a different campaign rejected: %v", err)
	}
}

// TestShardCountExceedingInjections pins the clear error for a plan that
// cannot feed every shard (the old code would only fail deep inside the
// campaign, if at all).
func TestShardCountExceedingInjections(t *testing.T) {
	cfg, err := parseFlags([]string{"-sample", "0.02", "-shards", "100000"})
	if err != nil {
		t.Fatal(err)
	}
	err = run(cfg)
	if err == nil {
		t.Fatal("absurd shard count accepted")
	}
	if !strings.Contains(err.Error(), "exceeds the campaign's") {
		t.Fatalf("error %q does not explain the shard/injection mismatch", err)
	}
}
