package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/runstore"
	"repro/internal/shard"
	"repro/internal/ssresf"
	"repro/internal/sweep"
)

// TestParseFlagsValidation pins the upfront flag validation: every broken
// flag or combination must fail fast with an actionable message instead
// of panicking deep inside the campaign.
func TestParseFlagsValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the expected error
	}{
		{"bad soc low", []string{"-soc", "0"}, "SoC"},
		{"bad soc high", []string{"-soc", "11"}, "SoC"},
		{"bad engine", []string{"-engine", "Verilator"}, "engine"},
		{"bad workload", []string{"-workload", "quicksort3"}, "workload"},
		{"sample zero", []string{"-sample", "0"}, "sample fraction"},
		{"sample high", []string{"-sample", "1.5"}, "sample fraction"},
		{"negative flux", []string{"-flux", "-1"}, "flux"},
		{"negative ckpt", []string{"-ckpt", "-2"}, "-ckpt"},
		{"zero shards", []string{"-shards", "0"}, "-shards"},
		{"resume without journal", []string{"-resume"}, "-resume needs -journal"},
		{"unknown sweep", []string{"-sweep", "table9"}, "sweep kind"},
		{"submit without sweep", []string{"-submit", "http://h:1"}, "-submit needs -sweep"},
		{"submit with journal", []string{"-sweep", "let", "-submit", "http://h:1", "-journal", "x.jsonl"}, "no effect with -submit"},
		{"submit with shards", []string{"-sweep", "let", "-submit", "http://h:1", "-shards", "4"}, "no effect with -submit"},
		{"submit with ckpt", []string{"-sweep", "let", "-submit", "http://h:1", "-ckpt", "5"}, "no effect with -submit"},
		{"sweep with campaign flag", []string{"-sweep", "let", "-soc", "3"}, "no effect under -sweep"},
		{"sweep with seed flag", []string{"-sweep", "table1", "-seed", "9"}, "no effect under -sweep"},
		{"bad lets", []string{"-sweep", "let", "-lets", "1,x"}, "-lets"},
		{"bad fluxes", []string{"-sweep", "table3", "-fluxes", "zap"}, "-fluxes"},
		{"bad sweep workload", []string{"-sweep", "table1", "-sweep-workload", "quicksort3"}, "workload"},
		{"sweep resume without journal", []string{"-sweep", "let", "-resume"}, "-resume needs -journal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseFlags(tc.args)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: error %q does not mention %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.spec.KN != shard.PaperKN(1) {
		t.Errorf("default KN %d, want paper value %d", cfg.spec.KN, shard.PaperKN(1))
	}
	if cfg.shards != 1 || cfg.journal != "" || cfg.resume {
		t.Errorf("sharding defaults wrong: %+v", cfg)
	}
	cfg, err = parseFlags([]string{"-soc", "3", "-kn", "7", "-shards", "4"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.spec.KN != 7 || cfg.spec.SoC != 3 || cfg.shards != 4 {
		t.Errorf("explicit flags lost: %+v", cfg)
	}
}

// TestParseFlagsRefusesStaleJournalWithoutResume covers the footgun of
// re-running a journaled campaign without -resume.
func TestParseFlagsRefusesStaleJournalWithoutResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "run.jsonl")
	cfg, err := parseFlags([]string{"-journal", journal})
	if err != nil {
		t.Fatalf("fresh journal path rejected: %v", err)
	}
	st, err := runstore.Open(journal)
	if err != nil {
		t.Fatal(err)
	}
	specFP, err := cfg.spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(specFP, &shard.Partial{Index: 0, Start: 0, End: 1}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := parseFlags([]string{"-journal", journal}); err == nil {
		t.Fatal("journal with recorded shards accepted without -resume")
	}
	if _, err := parseFlags([]string{"-journal", journal, "-resume"}); err != nil {
		t.Fatalf("-resume on recorded journal rejected: %v", err)
	}
	// A journal holding only a different campaign's shards is fine.
	if _, err := parseFlags([]string{"-journal", journal, "-seed", "99"}); err != nil {
		t.Fatalf("journal of a different campaign rejected: %v", err)
	}
}

// TestParseFlagsSweepGrid pins the sweep mode's flag surface: a grid
// parsed here enumerates exactly the fingerprints a campaignd sweep
// coordinator serves for the same flags (sweep.GridFlags is the shared
// registration point), which is what lets one journal resume under
// either tool.
func TestParseFlagsSweepGrid(t *testing.T) {
	cfg, err := parseFlags([]string{"-sweep", "let", "-lets", "1,37", "-quick", "-shards", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.grid == nil {
		t.Fatal("sweep flags parsed without a grid")
	}
	if got := len(cfg.grid.Spec.Items); got != 2 {
		t.Fatalf("LET grid enumerates %d campaigns, want 2", got)
	}
	if cfg.shards != 3 {
		t.Fatalf("sweep lost -shards: %+v", cfg)
	}
	ec := ssresf.DefaultExperimentConfig(true)
	wantGrid, err := sweep.LETGrid(ec, 1, []float64{1, 37}, "memcpy")
	if err != nil {
		t.Fatal(err)
	}
	gotFP, err := cfg.grid.Spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	wantFP, err := wantGrid.Spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if gotFP != wantFP {
		t.Fatal("socfault sweep grid diverges from the shared constructor")
	}
	// A non-sweep parse leaves the grid nil.
	cfg, err = parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.grid != nil {
		t.Fatal("default parse produced a grid")
	}
}

// TestParseFlagsRefusesStaleSweepJournal extends the stale-journal
// footgun check to grids: any member campaign's shards in the journal
// demand -resume.
func TestParseFlagsRefusesStaleSweepJournal(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "grid.jsonl")
	args := []string{"-sweep", "let", "-lets", "1,37", "-quick", "-journal", journal}
	cfg, err := parseFlags(args)
	if err != nil {
		t.Fatalf("fresh sweep journal rejected: %v", err)
	}
	st, err := runstore.Open(journal)
	if err != nil {
		t.Fatal(err)
	}
	// Record a shard of the grid's second campaign.
	fp, err := cfg.grid.Spec.Items[1].Campaign.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(fp, &shard.Partial{Index: 0, Start: 0, End: 1}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := parseFlags(args); err == nil {
		t.Fatal("journaled sweep accepted without -resume")
	}
	if _, err := parseFlags(append(args, "-resume")); err != nil {
		t.Fatalf("-resume on journaled sweep rejected: %v", err)
	}
	// A journal holding only an unrelated grid's shards is fine.
	if _, err := parseFlags([]string{"-sweep", "let", "-lets", "100", "-quick", "-journal", journal}); err != nil {
		t.Fatalf("journal of a different grid rejected: %v", err)
	}
}

// TestShardCountExceedingInjections pins the clear error for a plan that
// cannot feed every shard (the old code would only fail deep inside the
// campaign, if at all).
func TestShardCountExceedingInjections(t *testing.T) {
	cfg, err := parseFlags([]string{"-sample", "0.02", "-shards", "100000"})
	if err != nil {
		t.Fatal(err)
	}
	err = run(cfg)
	if err == nil {
		t.Fatal("absurd shard count accepted")
	}
	if !strings.Contains(err.Error(), "exceeds the campaign's") {
		t.Fatalf("error %q does not explain the shard/injection mismatch", err)
	}
}
