// Command socfault runs single-particle fault-injection campaigns on the
// Table I benchmarks and prints the soft-error reports.
//
// Usage:
//
//	socfault -soc 1 [-engine EventSim|LevelSim] [-let 37] [-flux 5e8]
//	         [-kn 5] [-ln 3] [-sample 0.2] [-seed 1] [-workload memcpy]
//	         [-shards 4] [-journal run.jsonl] [-resume]
//	socfault -sweep table1|table3|let [-lets 1,37,100] [-fluxes 4e8,..]
//	         [-sweep-soc 1] [-quick] [-shards 4] [-journal grid.jsonl] [-resume]
//	socfault -sweep table1 -submit http://coordinator:8372 [-watch]
//
// With -shards N each campaign executes as N independent shards of its
// pre-drawn injection plan (same result, bit for bit — the shape
// cmd/campaignd distributes over HTTP). With -journal every completed
// shard is appended to an on-disk journal; -resume reloads it after a
// crash and re-executes only the missing shards.
//
// With -sweep a whole experiment grid — Table I across all ten
// benchmarks, Table III's fluxes x engines, or a LET sweep — runs as one
// sharded, journaled sweep and renders the experiment's table. The grid
// enumerates exactly the campaign fingerprints a `campaignd serve
// -sweep` coordinator serves, so the same journal resumes under either
// tool and both render identical bytes.
//
// With -submit the very same grid is not run here at all: its
// declarative description is POSTed to a running campaignd coordinator,
// progress is watched until the fleet drains it, and the rendered
// result — byte-identical to the local -sweep run — is fetched and
// printed. Adding -watch swaps the polling loop for the coordinator's
// live SSE event stream: one line per shard lease/completion as it
// happens, a cost summary at the end, and automatic fallback to
// polling against a coordinator that cannot stream.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/capi"
	"repro/internal/fault"
	"repro/internal/inject"
	"repro/internal/runstore"
	"repro/internal/shard"
	"repro/internal/socgen"
	"repro/internal/sweep"
)

// cliConfig is the parsed and validated command line.
type cliConfig struct {
	spec    shard.CampaignSpec
	grid    *sweep.Grid      // non-nil: run a whole experiment grid
	params  sweep.GridParams // the grid's declarative description (with grid)
	submit  string           // non-empty: POST the grid to this coordinator
	watch   bool             // with submit: follow the live SSE event stream
	ckpt    int
	shards  int
	journal string
	resume  bool
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if errors.Is(err, flag.ErrHelp) {
		return
	}
	if err != nil {
		fatal(err)
	}
	if err := run(cfg); err != nil {
		fatal(err)
	}
}

// parseFlags builds the validated run configuration. The campaign-
// defining flags are registered through shard.CampaignFlags, the same
// registration cmd/campaignd uses, so a campaign named on either command
// line produces the same spec and fingerprint. Every bad flag or flag
// combination is rejected here with an actionable message, before any
// netlist is generated or simulation started.
func parseFlags(args []string) (*cliConfig, error) {
	fs := flag.NewFlagSet("socfault", flag.ContinueOnError)
	specOf := shard.CampaignFlags(fs)
	paramsOf := sweep.GridParamsFlags(fs)
	ckpt := fs.Int("ckpt", 0, "golden checkpoint pitch in cycles for warm-started injections (0 = default)")
	shards := fs.Int("shards", 1, "execute each campaign as this many independent shards (same result, bit for bit)")
	journal := fs.String("journal", "", "append each completed shard to this journal file")
	resume := fs.Bool("resume", false, "reload -journal and skip shards it already records")
	submit := fs.String("submit", "", "submit the -sweep grid to the campaignd coordinator at this URL instead of running it here, watch its progress, and print the fetched results")
	watch := fs.Bool("watch", false, "with -submit: follow the coordinator's live event stream (SSE) for per-shard progress instead of polling, and print the sweep's cost summary")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	cfg := &cliConfig{
		submit:  *submit,
		watch:   *watch,
		ckpt:    *ckpt,
		shards:  *shards,
		journal: *journal,
		resume:  *resume,
	}
	params, isSweep, err := paramsOf()
	if err != nil {
		return nil, err
	}
	if isSweep {
		cfg.params = params
		grid, err := params.Grid()
		if err != nil {
			return nil, err
		}
		cfg.grid = &grid
	} else {
		if *submit != "" {
			return nil, fmt.Errorf("-submit needs -sweep: only whole grids are submitted to a coordinator")
		}
		if cfg.spec, err = specOf(); err != nil {
			return nil, err
		}
	}
	if *submit != "" {
		// Everything below tunes local execution; on a submit the fleet's
		// coordinator owns journaling and sharding, so a local flag would
		// be silently dead weight.
		for name, val := range map[string]bool{"-journal": *journal != "", "-resume": *resume, "-ckpt": *ckpt != 0, "-shards": *shards != 1} {
			if val {
				return nil, fmt.Errorf("%s has no effect with -submit: the coordinator owns execution", name)
			}
		}
	} else if *watch {
		return nil, fmt.Errorf("-watch needs -submit: only a coordinator streams live events")
	}
	if *ckpt < 0 {
		return nil, fmt.Errorf("-ckpt %d must not be negative", *ckpt)
	}
	if *shards < 1 {
		return nil, fmt.Errorf("-shards %d must be at least 1", *shards)
	}
	if *resume && *journal == "" {
		return nil, fmt.Errorf("-resume needs -journal: there is no journal to resume from")
	}
	if *journal != "" && !*resume {
		// Refuse to silently double-run a campaign (or grid) whose journal
		// already holds results; the user either wants -resume or a fresh
		// file.
		fps := map[string]bool{}
		if cfg.grid != nil {
			var err error
			if fps, err = cfg.grid.Spec.Fingerprints(); err != nil {
				return nil, err
			}
		} else {
			fp, err := cfg.spec.Fingerprint()
			if err != nil {
				return nil, err
			}
			fps[fp] = true
		}
		n, err := runstore.CountAny(*journal, fps)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			return nil, fmt.Errorf("journal %s already records %d shards of this run; pass -resume to continue it or remove the file", *journal, n)
		}
	}
	return cfg, nil
}

func run(cfg *cliConfig) error {
	if cfg.submit != "" {
		return submitSweep(cfg)
	}
	if cfg.grid != nil {
		return runSweep(cfg)
	}
	if cfg.shards == 1 && cfg.journal == "" {
		// Classic single-process path.
		socCfg, err := socgen.ConfigByIndex(cfg.spec.SoC)
		if err != nil {
			return err
		}
		prog, err := shard.WorkloadProgram(cfg.spec.Workload)
		if err != nil {
			return err
		}
		opts := cfg.spec.Options()
		opts.CheckpointEveryCycles = cfg.ckpt
		run, err := inject.RunSoC(socCfg, prog, fault.DefaultDB(), opts)
		if err != nil {
			return err
		}
		fmt.Print(run.Result.String())
		return nil
	}
	return runSharded(cfg)
}

// runSharded executes the campaign as independent shards on this process,
// optionally journaling each shard and skipping journaled ones, and
// merges the partials into the exact single-process result.
func runSharded(cfg *cliConfig) error {
	b, err := shard.BuildLocal(cfg.spec, func(o *inject.Options) {
		o.CheckpointEveryCycles = cfg.ckpt
	})
	if err != nil {
		return err
	}
	specs, err := shard.Plan(cfg.spec, cfg.shards, len(b.Jobs))
	if err != nil {
		return err
	}
	fp := b.Fingerprint
	var done map[int]*shard.Partial
	if cfg.resume {
		if done, err = runstore.Load(cfg.journal, fp); err != nil {
			return err
		}
	}
	var store *runstore.Store
	if cfg.journal != "" {
		if store, err = runstore.Open(cfg.journal); err != nil {
			return err
		}
		defer store.Close()
	}
	partials := make([]*shard.Partial, 0, len(specs))
	resumed := 0
	for _, sp := range specs {
		if p, ok := done[sp.Index]; ok && p.Covers(sp) {
			partials = append(partials, p)
			resumed++
			continue
		}
		p, err := shard.ExecuteOn(b, sp)
		if err != nil {
			return err
		}
		if store != nil {
			if err := store.Append(fp, p); err != nil {
				return err
			}
		}
		partials = append(partials, p)
	}
	res, err := shard.Merge(b, partials)
	if err != nil {
		return err
	}
	if resumed > 0 {
		fmt.Printf("resumed %d of %d shards from %s\n", resumed, len(specs), cfg.journal)
	}
	fmt.Print(res.String())
	return nil
}

// runSweep executes a whole experiment grid in this process — every
// campaign sharded, journaled and resumable — and renders the
// experiment's table from the merged results, byte-identical to both the
// classic in-process ssresf drivers and a campaignd sweep coordinator
// serving the same grid.
func runSweep(cfg *cliConfig) error {
	results, err := sweep.RunLocal(cfg.grid.Spec, sweep.LocalOptions{
		Shards:     cfg.shards,
		Journal:    cfg.journal,
		Resume:     cfg.resume,
		Checkpoint: cfg.ckpt,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	return cfg.grid.Render(os.Stdout, results)
}

// submitSweep is the fleet path: POST the grid's declarative
// description to a running coordinator, watch per-campaign progress
// until the worker fleet drains it, fetch the rendered results and
// print them — byte-identical to runSweep on the same flags, because
// the coordinator resolves the description through the same grid
// constructors.
func submitSweep(cfg *cliConfig) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	client := capi.NewClient(cfg.submit)
	reply, err := client.Submit(ctx, cfg.params)
	if err != nil {
		return err
	}
	verb := "submitted to"
	if !reply.Created {
		verb = "already on"
	}
	fmt.Fprintf(os.Stderr, "socfault: sweep %s (%.12s, %d campaigns) %s %s\n",
		reply.Name, reply.Fingerprint, reply.Campaigns, verb, cfg.submit)
	var st capi.SweepStatus
	if cfg.watch {
		// Live path: follow the coordinator's SSE event stream. Every
		// lease, completion and fence prints as it happens; the client
		// reconnects through drops and falls back to polling against a
		// coordinator that cannot stream.
		st, err = client.WatchSweep(ctx, reply.Fingerprint, func(ev capi.SweepEvent) {
			line := ev.Type
			if ev.Campaign != "" {
				line = fmt.Sprintf("%s %s shard %d", ev.Type, ev.Campaign, ev.Shard)
				if ev.Worker != "" {
					line += " @" + ev.Worker
				}
			}
			fmt.Fprintf(os.Stderr, "socfault: [%d/%d] %s\n", ev.CampaignsDone, ev.CampaignsTotal, line)
		})
	} else {
		lastDone := -1
		st, err = client.WaitSweep(ctx, reply.Fingerprint, func(st capi.SweepStatus) {
			if st.Progress.CampaignsDone != lastDone {
				lastDone = st.Progress.CampaignsDone
				fmt.Fprintf(os.Stderr, "socfault: %d/%d campaigns done\n", st.Progress.CampaignsDone, st.Progress.CampaignsTotal)
			}
		})
	}
	if err != nil {
		return err
	}
	if cfg.watch && st.Cost != nil {
		c := st.Cost
		fmt.Fprintf(os.Stderr, "socfault: cost: %d shards, %d injections, %v simulated, %d warm starts (%d delta-restored, %v restore), %d pruned runs\n",
			c.Shards, c.InjectEvals, time.Duration(c.InjectWallNS).Round(time.Millisecond),
			c.WarmStarts, c.DeltaRestores, time.Duration(c.RestoreWallNS).Round(time.Millisecond), c.PrunedRuns)
	}
	switch st.State {
	case capi.StateDone:
	case capi.StateCancelled:
		return fmt.Errorf("sweep %.12s was cancelled on the coordinator", reply.Fingerprint)
	default:
		return fmt.Errorf("sweep %.12s %s on the coordinator: %s", reply.Fingerprint, st.State, st.Error)
	}
	rendered, err := client.Results(ctx, reply.Fingerprint)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(rendered)
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "socfault:", err)
	os.Exit(1)
}
