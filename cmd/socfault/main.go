// Command socfault runs single-particle fault-injection campaigns on the
// Table I benchmarks and prints the soft-error reports.
//
// Usage:
//
//	socfault -soc 1 [-engine EventSim|LevelSim] [-let 37] [-flux 5e8]
//	         [-kn 5] [-ln 3] [-sample 0.2] [-seed 1] [-workload memcpy]
//	         [-shards 4] [-journal run.jsonl] [-resume]
//	socfault -sweep table1|table3|let [-lets 1,37,100] [-fluxes 4e8,..]
//	         [-sweep-soc 1] [-quick] [-shards 4] [-journal grid.jsonl] [-resume]
//
// With -shards N each campaign executes as N independent shards of its
// pre-drawn injection plan (same result, bit for bit — the shape
// cmd/campaignd distributes over HTTP). With -journal every completed
// shard is appended to an on-disk journal; -resume reloads it after a
// crash and re-executes only the missing shards.
//
// With -sweep a whole experiment grid — Table I across all ten
// benchmarks, Table III's fluxes x engines, or a LET sweep — runs as one
// sharded, journaled sweep and renders the experiment's table. The grid
// enumerates exactly the campaign fingerprints a `campaignd serve
// -sweep` coordinator serves, so the same journal resumes under either
// tool and both render identical bytes.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/fault"
	"repro/internal/inject"
	"repro/internal/runstore"
	"repro/internal/shard"
	"repro/internal/socgen"
	"repro/internal/sweep"
)

// cliConfig is the parsed and validated command line.
type cliConfig struct {
	spec    shard.CampaignSpec
	grid    *sweep.Grid // non-nil: run a whole experiment grid
	ckpt    int
	shards  int
	journal string
	resume  bool
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if errors.Is(err, flag.ErrHelp) {
		return
	}
	if err != nil {
		fatal(err)
	}
	if err := run(cfg); err != nil {
		fatal(err)
	}
}

// parseFlags builds the validated run configuration. The campaign-
// defining flags are registered through shard.CampaignFlags, the same
// registration cmd/campaignd uses, so a campaign named on either command
// line produces the same spec and fingerprint. Every bad flag or flag
// combination is rejected here with an actionable message, before any
// netlist is generated or simulation started.
func parseFlags(args []string) (*cliConfig, error) {
	fs := flag.NewFlagSet("socfault", flag.ContinueOnError)
	specOf := shard.CampaignFlags(fs)
	gridOf := sweep.GridFlags(fs)
	ckpt := fs.Int("ckpt", 0, "golden checkpoint pitch in cycles for warm-started injections (0 = default)")
	shards := fs.Int("shards", 1, "execute each campaign as this many independent shards (same result, bit for bit)")
	journal := fs.String("journal", "", "append each completed shard to this journal file")
	resume := fs.Bool("resume", false, "reload -journal and skip shards it already records")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	cfg := &cliConfig{
		ckpt:    *ckpt,
		shards:  *shards,
		journal: *journal,
		resume:  *resume,
	}
	grid, isSweep, err := gridOf()
	if err != nil {
		return nil, err
	}
	if isSweep {
		cfg.grid = &grid
	} else {
		if cfg.spec, err = specOf(); err != nil {
			return nil, err
		}
	}
	if *ckpt < 0 {
		return nil, fmt.Errorf("-ckpt %d must not be negative", *ckpt)
	}
	if *shards < 1 {
		return nil, fmt.Errorf("-shards %d must be at least 1", *shards)
	}
	if *resume && *journal == "" {
		return nil, fmt.Errorf("-resume needs -journal: there is no journal to resume from")
	}
	if *journal != "" && !*resume {
		// Refuse to silently double-run a campaign (or grid) whose journal
		// already holds results; the user either wants -resume or a fresh
		// file.
		fps := map[string]bool{}
		if cfg.grid != nil {
			fps = cfg.grid.Spec.Fingerprints()
		} else {
			fps[cfg.spec.Fingerprint()] = true
		}
		n, err := runstore.CountAny(*journal, fps)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			return nil, fmt.Errorf("journal %s already records %d shards of this run; pass -resume to continue it or remove the file", *journal, n)
		}
	}
	return cfg, nil
}

func run(cfg *cliConfig) error {
	if cfg.grid != nil {
		return runSweep(cfg)
	}
	if cfg.shards == 1 && cfg.journal == "" {
		// Classic single-process path.
		socCfg, err := socgen.ConfigByIndex(cfg.spec.SoC)
		if err != nil {
			return err
		}
		prog, err := shard.WorkloadProgram(cfg.spec.Workload)
		if err != nil {
			return err
		}
		opts := cfg.spec.Options()
		opts.CheckpointEveryCycles = cfg.ckpt
		run, err := inject.RunSoC(socCfg, prog, fault.DefaultDB(), opts)
		if err != nil {
			return err
		}
		fmt.Print(run.Result.String())
		return nil
	}
	return runSharded(cfg)
}

// runSharded executes the campaign as independent shards on this process,
// optionally journaling each shard and skipping journaled ones, and
// merges the partials into the exact single-process result.
func runSharded(cfg *cliConfig) error {
	b, err := shard.BuildLocal(cfg.spec, func(o *inject.Options) {
		o.CheckpointEveryCycles = cfg.ckpt
	})
	if err != nil {
		return err
	}
	specs, err := shard.Plan(cfg.spec, cfg.shards, len(b.Jobs))
	if err != nil {
		return err
	}
	fp := b.Fingerprint
	var done map[int]*shard.Partial
	if cfg.resume {
		if done, err = runstore.Load(cfg.journal, fp); err != nil {
			return err
		}
	}
	var store *runstore.Store
	if cfg.journal != "" {
		if store, err = runstore.Open(cfg.journal); err != nil {
			return err
		}
		defer store.Close()
	}
	partials := make([]*shard.Partial, 0, len(specs))
	resumed := 0
	for _, sp := range specs {
		if p, ok := done[sp.Index]; ok && p.Covers(sp) {
			partials = append(partials, p)
			resumed++
			continue
		}
		p, err := shard.ExecuteOn(b, sp)
		if err != nil {
			return err
		}
		if store != nil {
			if err := store.Append(fp, p); err != nil {
				return err
			}
		}
		partials = append(partials, p)
	}
	res, err := shard.Merge(b, partials)
	if err != nil {
		return err
	}
	if resumed > 0 {
		fmt.Printf("resumed %d of %d shards from %s\n", resumed, len(specs), cfg.journal)
	}
	fmt.Print(res.String())
	return nil
}

// runSweep executes a whole experiment grid in this process — every
// campaign sharded, journaled and resumable — and renders the
// experiment's table from the merged results, byte-identical to both the
// classic in-process ssresf drivers and a campaignd sweep coordinator
// serving the same grid.
func runSweep(cfg *cliConfig) error {
	results, err := sweep.RunLocal(cfg.grid.Spec, sweep.LocalOptions{
		Shards:     cfg.shards,
		Journal:    cfg.journal,
		Resume:     cfg.resume,
		Checkpoint: cfg.ckpt,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	return cfg.grid.Render(os.Stdout, results)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "socfault:", err)
	os.Exit(1)
}
