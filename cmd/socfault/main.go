// Command socfault runs a single-particle fault-injection campaign on one
// Table I benchmark and prints the soft-error report.
//
// Usage:
//
//	socfault -soc 1 [-engine EventSim|LevelSim] [-let 37] [-flux 5e8]
//	         [-kn 5] [-ln 3] [-sample 0.2] [-seed 1] [-workload memcpy]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fault"
	"repro/internal/inject"
	"repro/internal/riscv"
	"repro/internal/sim"
	"repro/internal/socgen"
)

func main() {
	socIdx := flag.Int("soc", 1, "Table I benchmark index (1-10)")
	engine := flag.String("engine", "EventSim", "simulation engine: EventSim (VCS role) or LevelSim (CVC role)")
	let := flag.Float64("let", 37.0, "linear energy transfer (MeV·cm²/mg)")
	flux := flag.Float64("flux", 5e8, "particle flux (particles/cm²/s)")
	kn := flag.Int("kn", 0, "cluster count KN (0 = paper's value for the benchmark)")
	ln := flag.Int("ln", 3, "cluster layer depth LN")
	sample := flag.Float64("sample", 0.2, "per-cluster sampling fraction")
	seed := flag.Uint64("seed", 1, "campaign random seed")
	workload := flag.String("workload", "memcpy", "workload kernel: memcpy, dot, crc, sort, fib")
	ckpt := flag.Int("ckpt", 0, "golden checkpoint pitch in cycles for warm-started injections (0 = default)")
	cold := flag.Bool("cold", false, "disable checkpoint warm starts and replay every injection from t=0")
	flag.Parse()

	cfg, err := socgen.ConfigByIndex(*socIdx)
	if err != nil {
		fatal(err)
	}
	opts := inject.DefaultOptions()
	opts.Engine = sim.EngineKind(*engine)
	opts.LET = *let
	opts.Flux = *flux
	opts.LN = *ln
	opts.SampleFrac = *sample
	opts.Seed = *seed
	opts.CheckpointEveryCycles = *ckpt
	opts.ColdStart = *cold
	if *kn > 0 {
		opts.KN = *kn
	} else {
		paperKN := []int{5, 6, 8, 9, 14, 15, 18, 19, 21, 23}
		opts.KN = paperKN[*socIdx-1]
	}

	prog, err := workloadByName(*workload)
	if err != nil {
		fatal(err)
	}
	run, err := inject.RunSoC(cfg, prog, fault.DefaultDB(), opts)
	if err != nil {
		fatal(err)
	}
	fmt.Print(run.Result.String())
}

func workloadByName(name string) (riscv.Program, error) {
	switch name {
	case "memcpy":
		return riscv.MemcpyProgram(16), nil
	case "dot":
		return riscv.DotProductProgram(16), nil
	case "crc":
		return riscv.CRCProgram(12), nil
	case "sort":
		return riscv.SortProgram(12), nil
	case "fib":
		return riscv.FibProgram(20), nil
	}
	return riscv.Program{}, fmt.Errorf("unknown workload %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "socfault:", err)
	os.Exit(1)
}
