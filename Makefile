# Tier-1 verification and perf-smoke targets; CI runs `make ci bench-smoke`.

GO ?= go

.PHONY: all vet build test ci bench-smoke bench clean

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

ci: vet build test

# bench-smoke runs the warm-start comparison once and leaves
# BENCH_warmstart.json behind with golden/injection wall-clock and
# cell-evaluation metrics, so the perf trajectory is tracked per commit.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkWarmVsCold' -benchtime 1x .
	@cat BENCH_warmstart.json

# bench runs the full table/figure harness (minutes).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

clean:
	rm -f BENCH_warmstart.json
