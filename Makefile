# Tier-1 verification and perf-smoke targets; CI runs `make ci bench-smoke`.

GO ?= go

.PHONY: all vet build test race ci bench-smoke sweep-smoke chaos-smoke obs-smoke watch-smoke lake-smoke integrity-smoke bench clean

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race re-runs the concurrency-heavy packages — the shard queue, sweep
# pool, wire client, journal tailer, metrics registry and the
# coordinator itself — under the race detector. This list also covers
# every package the integrity & quarantine subsystem touches (shard
# checksums/audits, capi typed errors, chaos corrupt faults, runstore
# replay verification, campaignd wiring).
race:
	$(GO) test -race -count=1 ./internal/shard ./internal/sweep ./internal/capi ./internal/runstore ./internal/chaos ./internal/obs ./internal/lake ./cmd/campaignd

ci: vet build test race

# bench-smoke runs the warm-start comparisons once — both engines plus
# the compare_vcd detector variant — and leaves BENCH_warmstart.json
# behind with golden/injection wall-clock, cell-evaluation, pruning and
# delta-restore metrics, so the perf trajectory is tracked per commit (CI
# archives the file). benchgate then fails the target when any entry's
# evals_reduction_x regresses >20% below the baseline committed at HEAD
# (not the working-tree file, which the benchmark itself overwrites — so
# re-running never self-rebaselines), or when an entry stops warm-starting.
bench-smoke:
	@git show HEAD:BENCH_warmstart.json > BENCH_warmstart.baseline.json 2>/dev/null || rm -f BENCH_warmstart.baseline.json
	$(GO) test -run '^$$' -bench '^BenchmarkWarmVsCold(LevelSim|VCD)?$$' -benchtime 1x .
	@cat BENCH_warmstart.json
	@if [ -s BENCH_warmstart.baseline.json ]; then \
		$(GO) run ./cmd/benchgate -baseline BENCH_warmstart.baseline.json -new BENCH_warmstart.json -max-regress 0.20; \
		gate=$$?; \
		rm -f BENCH_warmstart.baseline.json; \
		exit $$gate; \
	else \
		rm -f BENCH_warmstart.baseline.json; \
		echo "benchgate: no committed baseline, skipping regression gate"; \
	fi

# sweep-smoke runs a tiny two-campaign sweep (SoC1 at two LETs) through
# the campaignd coordinator with a live worker and asserts the rendered
# sweep output is byte-identical to the in-process ssresf path — once
# self-submitted via the -sweep flags, and once through the resource
# API: an empty coordinator, the grid submitted over POST /v1/sweeps by
# the typed capi client, results fetched and diffed against the local
# `socfault -sweep` execution path.
sweep-smoke:
	$(GO) test ./cmd/campaignd -run '^(TestSweepSmokeByteIdentical|TestAPISubmitSmoke)$$' -count=1 -v

# chaos-smoke is the robustness gate: a leader crash-stopped mid-grid
# with a warm standby taking over from the journal (byte-identical
# output, zero re-simulation, stale-epoch completions fenced), a sweep
# drained through fault-injecting HTTP transports (drops, resets, 503s,
# duplicated POSTs, delays — every class asserted to have actually fired
# via the chaos_injected_total scrape), and a straggler shard re-issued
# speculatively — all under the race detector. Together the three runs
# leave the fenced, speculated and client-retry series provably nonzero.
chaos-smoke:
	$(GO) test ./cmd/campaignd -race -run '^(TestCoordinatorFailover|TestSweepUnderChaos|TestSpeculationObserved)$$' -count=1 -v

# obs-smoke is the observability gate: a quick sweep drained end to end
# with metrics, tracing and the pprof debug server enabled; /metrics is
# scraped mid-flight and at drain through the strict exposition parser
# (lifecycle series present and monotone), the exported trace must
# validate as Chrome trace_event JSON, and the rendered sweep output
# must be byte-identical to the uninstrumented reference.
obs-smoke:
	$(GO) test ./cmd/campaignd -race -run '^(TestObsSmoke)$$' -count=1 -v

# watch-smoke is the federation/live-watch gate: a sweep followed over
# the SSE stream (with a forced mid-stream reconnect) must match the
# polled path and the uninstrumented reference byte for byte, and a
# pushing worker must surface on GET /metrics/fleet with per-sweep cost
# attribution.
watch-smoke:
	$(GO) test ./cmd/campaignd -race -run '^(TestWatchMatchesPoll|TestFleetFederation)$$' -count=1 -v

# lake-smoke is the artifact-lake gate: two workers share one golden
# build through the coordinator's lake (exactly one "golden" span
# fleet-wide, worker lake hits nonzero), a resubmitted sweep on the same
# lake completes with zero re-simulated shards and no workers at all,
# and a lake chaos-failed mid-sweep still drains to output byte-identical
# to the in-process reference — all under the race detector.
lake-smoke:
	$(GO) test ./cmd/campaignd -race -run '^(TestLakeGoldenSharedOnce|TestLakeCrossSweepReuse|TestLakeChaosMidSweep)$$' -count=1 -v

# integrity-smoke is the end-to-end result-integrity gate: a sweep
# drained with a wire that corrupts most completion payloads (every one
# refused with integrity_mismatch, merged grid still byte-identical to
# the clean reference), a faulty worker computing wrong-but-checksummed
# results caught by audit re-execution and quarantined
# (fleet_workers{state="quarantined"} nonzero), a poison shard that
# crashes every executor landing in quarantined state instead of
# hanging its sweep, and a journal record damaged at rest skipped on
# replay and re-simulated — all under the race detector.
integrity-smoke:
	$(GO) test ./cmd/campaignd -race -run '^(TestIntegritySmoke|TestPoisonShardQuarantine|TestJournalCorruptRecordReplay)$$' -count=1 -v

# bench runs the full table/figure harness (minutes).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

clean:
	rm -f BENCH_warmstart.json BENCH_warmstart.baseline.json
